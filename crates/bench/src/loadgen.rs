//! Load generator for the resident query service (`pa loadgen`).
//!
//! Drives a mixed query workload against a running `pa serve` daemon —
//! one client thread per connection, each with its own seeded SplitMix64
//! stream so the request mix is reproducible and independent of the
//! `rand` crate in use — and reports p50/p99 latency plus throughput,
//! optionally as a `BENCH_serve.json`-style entry.
//!
//! The workload is discovered, not configured: a discovery pass asks the
//! daemon for its rung ladder and samples atom memberships to build a
//! prefix pool, so the generator works against any store.

use atoms_core::serve::protocol::{Client, Request};
use std::time::Instant;

/// Request mix in percent, in the order `prefix_atom`, `members`,
/// `atoms`, `stability`, `formation`, `stability_series`,
/// `split_history`. Weighted toward the point lookups a resident service
/// exists for.
const MIX: [(&str, u64); 7] = [
    ("prefix_atom", 40),
    ("members", 30),
    ("atoms", 10),
    ("stability", 10),
    ("formation", 5),
    ("stability_series", 4),
    ("split_history", 1),
];

/// Atoms sampled per rung for the prefix pool.
const POOL_ATOMS_PER_RUNG: u64 = 16;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// `host:port` of the running daemon.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: u64,
    /// Concurrent connections (one client thread each).
    pub connections: usize,
    /// Workload seed.
    pub seed: u64,
}

/// One run's merged results.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests actually issued.
    pub requests: u64,
    /// Requests that came back as service errors (must be 0 on a healthy
    /// run — the workload only issues valid queries).
    pub errors: u64,
    /// Wall-clock of the query phase (discovery excluded).
    pub elapsed_secs: f64,
    /// Requests per second over the query phase.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Requests per endpoint, in [`MIX`] order.
    pub per_endpoint: Vec<(String, u64)>,
    /// Connections used.
    pub connections: usize,
}

/// One rung as discovered from the daemon.
#[derive(Debug, Clone)]
struct RungInfo {
    date: String,
    family: String,
    atoms: u64,
}

/// Self-contained SplitMix64: reproducible across rand crate versions
/// and the vendor-stub harness (same construction as the corrupted-MRT
/// corpus builder).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Runs the workload and merges the per-connection results.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.requests == 0 || cfg.connections == 0 {
        return Err("loadgen needs at least 1 request and 1 connection".to_string());
    }
    let (rungs, pool) = discover(&cfg.addr)?;
    let started = Instant::now();
    let per_conn = split_evenly(cfg.requests, cfg.connections);
    let results: Vec<Result<WorkerResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let addr = cfg.addr.clone();
                let seed = cfg.seed ^ (0xA5A5_0000 + i as u64);
                let rungs = &rungs;
                let pool = &pool;
                scope.spawn(move || worker(&addr, seed, n, rungs, pool))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker does not panic"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests as usize);
    let mut errors = 0u64;
    let mut per_endpoint: Vec<(String, u64)> =
        MIX.iter().map(|(name, _)| (name.to_string(), 0)).collect();
    for r in results {
        let r = r?;
        latencies.extend_from_slice(&r.latencies_us);
        errors += r.errors;
        for (slot, n) in per_endpoint.iter_mut().zip(r.per_endpoint) {
            slot.1 += n;
        }
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    Ok(LoadgenReport {
        requests,
        errors,
        elapsed_secs: elapsed,
        qps: requests as f64 / elapsed.max(1e-9),
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        per_endpoint,
        connections: cfg.connections,
    })
}

struct WorkerResult {
    latencies_us: Vec<u64>,
    errors: u64,
    per_endpoint: Vec<u64>,
}

fn worker(
    addr: &str,
    seed: u64,
    requests: u64,
    rungs: &[RungInfo],
    pool: &[(String, String, String)], // (prefix, date, family)
) -> Result<WorkerResult, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("loadgen cannot connect to {addr}: {e}"))?;
    let mut rng = SplitMix64(seed);
    let mut latencies_us = Vec::with_capacity(requests as usize);
    let mut errors = 0u64;
    let mut per_endpoint = vec![0u64; MIX.len()];
    // Rungs grouped by family, for pair/range endpoints.
    let families: Vec<Vec<&RungInfo>> = {
        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        for r in rungs {
            if r.family == "v6" { &mut v6 } else { &mut v4 }.push(r);
        }
        [v4, v6].into_iter().filter(|f| !f.is_empty()).collect()
    };
    for _ in 0..requests {
        let (slot, req) = pick_request(&mut rng, rungs, &families, pool);
        per_endpoint[slot] += 1;
        let t0 = Instant::now();
        match client.call(&req) {
            Ok(_) => {}
            Err(e) if e.starts_with("not_found") => {
                // Prefixes sampled at discovery stay resolvable on an
                // immutable ladder; anything else is a workload bug.
                errors += 1;
            }
            Err(e) => return Err(format!("loadgen request failed: {e}")),
        }
        latencies_us.push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
    Ok(WorkerResult {
        latencies_us,
        errors,
        per_endpoint,
    })
}

/// Picks one request from the mix. Falls back to `atoms` when the ladder
/// is too short for the chosen endpoint (pairs need 2 rungs, triples 3).
fn pick_request(
    rng: &mut SplitMix64,
    rungs: &[RungInfo],
    families: &[Vec<&RungInfo>],
    pool: &[(String, String, String)],
) -> (usize, Request) {
    let roll = rng.below(100);
    let mut upto = 0;
    let mut slot = 0;
    for (i, (_, weight)) in MIX.iter().enumerate() {
        upto += weight;
        if roll < upto {
            slot = i;
            break;
        }
    }
    let any_rung = &rungs[rng.below(rungs.len() as u64) as usize];
    let fam = &families[rng.below(families.len() as u64) as usize];
    let req = match MIX[slot].0 {
        "prefix_atom" if !pool.is_empty() => {
            let (prefix, date, family) = &pool[rng.below(pool.len() as u64) as usize];
            Request::new("prefix_atom")
                .param("prefix", prefix)
                .param("date", date)
                .param("family", family)
                .param_bool("json", true)
        }
        "members" => Request::new("members")
            .param_u64("atom", rng.below(any_rung.atoms))
            .param("date", &any_rung.date)
            .param("family", &any_rung.family)
            .param_bool("json", true),
        "stability" if fam.len() >= 2 => {
            let i = rng.below(fam.len() as u64 - 1) as usize;
            Request::new("stability")
                .param("t1", &fam[i].date)
                .param("t2", &fam[i + 1].date)
                .param("family", &fam[i].family)
        }
        "formation" => Request::new("formation")
            .param("date", &any_rung.date)
            .param("family", &any_rung.family),
        "stability_series" if fam.len() >= 2 => Request::new("stability_series")
            .param("from", &fam[0].date)
            .param("to", &fam[fam.len() - 1].date)
            .param("family", &fam[0].family)
            .param_bool("json", true),
        "split_history" if fam.len() >= 3 => Request::new("split_history")
            .param("from", &fam[0].date)
            .param("to", &fam[fam.len() - 1].date)
            .param("family", &fam[0].family)
            .param_bool("json", true),
        _ => Request::new("atoms")
            .param("date", &any_rung.date)
            .param("family", &any_rung.family)
            .param_bool("json", rng.below(2) == 0),
    };
    (slot, req)
}

/// Discovery pass: the rung ladder, plus a prefix pool sampled from atom
/// memberships.
#[allow(clippy::type_complexity)]
fn discover(addr: &str) -> Result<(Vec<RungInfo>, Vec<(String, String, String)>), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("loadgen cannot connect to {addr}: {e}"))?;
    let body = client.call(&Request::new("rungs"))?;
    let parsed: serde_json::Value =
        serde_json::from_str(body.trim_end()).map_err(|e| format!("unparsable rungs body: {e}"))?;
    let list = parsed
        .as_array()
        .ok_or_else(|| "rungs body is not an array".to_string())?;
    let mut rungs = Vec::with_capacity(list.len());
    for entry in list {
        rungs.push(RungInfo {
            date: entry["date"].as_str().unwrap_or_default().to_string(),
            family: entry["family"].as_str().unwrap_or_default().to_string(),
            atoms: entry["atoms"].as_u64().unwrap_or(0),
        });
    }
    if rungs.iter().all(|r| r.atoms == 0) {
        return Err("the daemon's ladder has no atoms to query".to_string());
    }
    let mut pool = Vec::new();
    for rung in &rungs {
        let stride = (rung.atoms / POOL_ATOMS_PER_RUNG).max(1);
        let mut atom = 0;
        while atom < rung.atoms {
            let body = client.call(
                &Request::new("members")
                    .param_u64("atom", atom)
                    .param("date", &rung.date)
                    .param("family", &rung.family)
                    .param_bool("json", true),
            )?;
            let members: serde_json::Value = serde_json::from_str(body.trim_end())
                .map_err(|e| format!("unparsable members body: {e}"))?;
            if let Some(prefixes) = members["prefixes"].as_array() {
                for p in prefixes.iter().take(4) {
                    if let Some(p) = p.as_str() {
                        pool.push((p.to_string(), rung.date.clone(), rung.family.clone()));
                    }
                }
            }
            atom += stride;
        }
    }
    Ok((rungs, pool))
}

fn split_evenly(total: u64, parts: usize) -> Vec<u64> {
    let base = total / parts as u64;
    let extra = (total % parts as u64) as usize;
    (0..parts).map(|i| base + u64::from(i < extra)).collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: smallest value with at least p% of the sample at or
    // below it.  ceil(p/100 * n) - 1 as a zero-based index.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Renders the report as one `BENCH_serve.json` entry.
pub fn bench_entry(report: &LoadgenReport, addr: &str, date: &str) -> String {
    let mut endpoints = String::from("{");
    for (i, (name, n)) in report.per_endpoint.iter().enumerate() {
        if i > 0 {
            endpoints.push(',');
        }
        endpoints.push_str(&format!(" \"{name}\": {n}"));
    }
    endpoints.push_str(" }");
    format!(
        r#"[
  {{
    "bench": "serve_loadgen",
    "source": "pa loadgen --connect {addr} --requests {requests} --connections {connections} --bench-json BENCH_serve.json",
    "date": "{date}",
    "workload": {{
      "mix": "40% prefix_atom, 30% members, 10% atoms, 10% stability, 5% formation, 4% stability_series, 1% split_history",
      "per_endpoint": {endpoints},
      "connections": {connections},
      "protocol": "length-prefixed JSON frames over loopback TCP"
    }},
    "results": {{
      "requests": {requests},
      "errors": {errors},
      "elapsed_secs": {elapsed:.1},
      "qps": {qps:.0},
      "p50_us": {p50},
      "p99_us": {p99}
    }},
    "acceptance": {{ "target": ">= 1,000,000 mixed queries answered with 0 errors", "met": {met} }},
    "notes": "1-core container: the daemon and every client thread share one core, so the figures are a floor, not a ceiling. Bodies are byte-identical to the batch CLI by the shared-renderer construction (see DESIGN.md section 12)."
  }}
]
"#,
        requests = report.requests,
        connections = report.connections,
        errors = report.errors,
        elapsed = report.elapsed_secs,
        qps = report.qps,
        p50 = report.p50_us,
        p99 = report.p99_us,
        met = report.requests >= 1_000_000 && report.errors == 0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_covers_the_total() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(3, 8).iter().sum::<u64>(), 3);
        assert_eq!(split_evenly(1_000_000, 7).iter().sum::<u64>(), 1_000_000);
    }

    #[test]
    fn percentile_picks_sane_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn splitmix_stream_is_stable() {
        // The workload must not drift with toolchain or rand crate
        // changes: the generator is self-contained and deterministic.
        let mut a = SplitMix64(7);
        let mut b = SplitMix64(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        assert_ne!(SplitMix64(1).next(), SplitMix64(2).next());
    }
}
