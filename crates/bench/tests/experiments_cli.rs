//! End-to-end determinism tests for the experiment harness: the
//! `--threads` knob must be unobservable in the written JSON payloads.
//!
//! Each setting runs in its own process — the in-process sweep cache is
//! keyed by (family, scale, range) only, so a same-process comparison
//! would just read back the first run's result.

use std::path::PathBuf;
use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pa-exp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_experiment(id: &str, scale: &str, threads: &str, tag: &str) -> Vec<u8> {
    run_experiment_with(id, scale, threads, tag, &[])
}

fn run_experiment_with(id: &str, scale: &str, threads: &str, tag: &str, extra: &[&str]) -> Vec<u8> {
    let dir = tmpdir(tag);
    let out = experiments()
        .args(["--scale", scale, "--threads", threads])
        .args(extra)
        .arg("--out")
        .arg(&dir)
        .arg(id)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "experiments {id} --threads {threads} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let payload = std::fs::read(dir.join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("missing {id}.json: {e}"));
    std::fs::remove_dir_all(&dir).unwrap();
    payload
}

/// `--threads 4` writes a byte-identical table1.json.
#[test]
fn table1_payload_is_thread_count_invariant() {
    let serial = run_experiment("table1", "400", "1", "t1-serial");
    let parallel = run_experiment("table1", "400", "4", "t1-par");
    assert!(!serial.is_empty());
    assert_eq!(
        parallel, serial,
        "--threads 4 diverged from serial table1.json"
    );
}

/// The quarter-level sweep (fig13 runs the full 2004–2024 quarterly sweep
/// on the worker pool) merges results in timeline order: byte-identical
/// payload at 1 and 4 workers.
#[test]
fn quarterly_sweep_payload_is_thread_count_invariant() {
    let serial = run_experiment("fig13", "1600", "1", "f13-serial");
    let parallel = run_experiment("fig13", "1600", "4", "f13-par");
    assert!(!serial.is_empty());
    assert_eq!(
        parallel, serial,
        "--threads 4 diverged from serial fig13.json"
    );
}

/// `--incremental` walks the quarterly sweep serially, patching each
/// quarter's atoms from the previous quarter's, and must write a
/// byte-identical fig5.json — with or without a worker pool configured.
#[test]
fn quarterly_sweep_payload_is_incremental_invariant() {
    let full = run_experiment("fig5", "1600", "1", "f5-full");
    assert!(!full.is_empty());
    let incremental = run_experiment_with("fig5", "1600", "1", "f5-inc", &["--incremental"]);
    assert_eq!(
        incremental, full,
        "--incremental diverged from full fig5.json"
    );
    let inc_threads = run_experiment_with("fig5", "1600", "4", "f5-inc-par", &["--incremental"]);
    assert_eq!(
        inc_threads, full,
        "--incremental --threads 4 diverged from full fig5.json"
    );
}

/// The daily split-event study reuses the delta path under --incremental:
/// consecutive daily snapshots are the engine's best case. fig6.json must
/// not move by a byte.
#[test]
fn split_study_payload_is_incremental_invariant() {
    let run = |tag: &str, extra: &[&str]| {
        let dir = tmpdir(tag);
        let out = experiments()
            .args(["--scale", "1600", "--threads", "1"])
            .args(extra)
            .arg("--out")
            .arg(&dir)
            .arg("fig6")
            .env("PA_SPLIT_DAYS", "8")
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "experiments fig6 {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let payload = std::fs::read(dir.join("fig6.json")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        payload
    };
    let full = run("f6-full", &[]);
    assert!(!full.is_empty());
    let incremental = run("f6-inc", &["--incremental"]);
    assert_eq!(
        incremental, full,
        "--incremental diverged from full fig6.json"
    );
}
