//! End-to-end determinism tests for the experiment harness: the
//! `--threads` knob must be unobservable in the written JSON payloads.
//!
//! Each setting runs in its own process — the in-process sweep cache is
//! keyed by (family, scale, range) only, so a same-process comparison
//! would just read back the first run's result.

use std::path::PathBuf;
use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pa-exp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_experiment(id: &str, scale: &str, threads: &str, tag: &str) -> Vec<u8> {
    let dir = tmpdir(tag);
    let out = experiments()
        .args(["--scale", scale, "--threads", threads, "--out"])
        .arg(&dir)
        .arg(id)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "experiments {id} --threads {threads} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let payload = std::fs::read(dir.join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("missing {id}.json: {e}"));
    std::fs::remove_dir_all(&dir).unwrap();
    payload
}

/// `--threads 4` writes a byte-identical table1.json.
#[test]
fn table1_payload_is_thread_count_invariant() {
    let serial = run_experiment("table1", "400", "1", "t1-serial");
    let parallel = run_experiment("table1", "400", "4", "t1-par");
    assert!(!serial.is_empty());
    assert_eq!(parallel, serial, "--threads 4 diverged from serial table1.json");
}

/// The quarter-level sweep (fig13 runs the full 2004–2024 quarterly sweep
/// on the worker pool) merges results in timeline order: byte-identical
/// payload at 1 and 4 workers.
#[test]
fn quarterly_sweep_payload_is_thread_count_invariant() {
    let serial = run_experiment("fig13", "1600", "1", "f13-serial");
    let parallel = run_experiment("fig13", "1600", "4", "f13-par");
    assert!(!serial.is_empty());
    assert_eq!(parallel, serial, "--threads 4 diverged from serial fig13.json");
}
