//! The paper's four analyses as micro-benchmarks: formation distance,
//! update correlation, CAM/MPM stability, and split detection.

use atoms_core::formation::{formation, PrependMethod};
use atoms_core::pipeline::{analyze_snapshot, PipelineConfig};
use atoms_core::splits::detect_splits;
use atoms_core::stability::{cam, mpm};
use atoms_core::update_corr::correlate;
use bgp_collect::{CapturedSnapshot, CapturedUpdates};
use bgp_sim::{generate_window, Era, Scenario};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_analyses(c: &mut Criterion) {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let churn = era.churn;
    let mut scenario = Scenario::build(era);
    let cfg = PipelineConfig::default();
    let base = analyze_snapshot(
        &CapturedSnapshot::from_sim(&scenario.snapshot(date)),
        None,
        &cfg,
    );
    let events = generate_window(&mut scenario, date, 4, 1);
    let updates = CapturedUpdates::from_sim(&events);
    scenario.perturb_units(churn[0], 1);
    let later = analyze_snapshot(
        &CapturedSnapshot::from_sim(&scenario.snapshot(date.plus_hours(8))),
        None,
        &cfg,
    );
    scenario.perturb_units(churn[1], 2);
    let latest = analyze_snapshot(
        &CapturedSnapshot::from_sim(&scenario.snapshot(date.plus_hours(32))),
        None,
        &cfg,
    );

    let mut group = c.benchmark_group("analyses");
    group.sample_size(20);
    group.throughput(Throughput::Elements(base.atoms.len() as u64));
    group.bench_function("formation_method_iii", |b| {
        b.iter(|| formation(&base.atoms, PrependMethod::UniqueOnRaw))
    });
    group.throughput(Throughput::Elements(updates.records.len() as u64));
    group.bench_function("update_correlation", |b| {
        b.iter(|| correlate(&base.atoms, &updates.records, 7))
    });
    group.throughput(Throughput::Elements(base.atoms.len() as u64));
    group.bench_function("cam", |b| b.iter(|| cam(&base.atoms, &later.atoms)));
    group.bench_function("mpm_greedy", |b| b.iter(|| mpm(&base.atoms, &later.atoms)));
    group.bench_function("detect_splits", |b| {
        b.iter(|| detect_splits(&base.atoms, &later.atoms, &latest.atoms))
    });
    group.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
