//! Incremental vs full atom recomputation down a snapshot ladder.
//!
//! The ladder is eight consecutive small-churn snapshots of the 2016
//! scenario — the shape of the quarterly sweep and the daily split study.
//! Sanitization happens outside the timed region: the comparison isolates
//! the atom stage, which is the part `--incremental` replaces. The
//! acceptance target is ≥2× for the chained walk over the from-scratch
//! walk; outputs are asserted byte-identical first so the speedup is
//! honest.

use atoms_core::atom::compute_atoms;
use atoms_core::incremental::{compute_full, step, IncrementalState};
use atoms_core::parallel::Parallelism;
use atoms_core::sanitize::{sanitize_into, SanitizeConfig, SanitizedSnapshot};
use bgp_collect::CapturedSnapshot;
use bgp_sim::{Era, Scenario};
use bgp_types::{Family, SimTime, SnapshotStore};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const RUNGS: usize = 12;

fn ladder() -> Vec<SanitizedSnapshot> {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    // Rung-to-rung churn on the scale of a day, not a quarter: the
    // incremental engine's target workload.
    let churn = era.churn[0] / 32.0;
    let mut scenario = Scenario::build(era);
    let cfg = SanitizeConfig::default();
    // One shared store down the ladder: the chained walk diffs by path id,
    // which requires every rung interned into the same arenas.
    let store = SnapshotStore::new();
    let mut out = Vec::with_capacity(RUNGS);
    for rung in 0..RUNGS {
        if rung > 0 {
            scenario.perturb_units(churn, 0xBE4C + rung as u64);
        }
        let snap = scenario.snapshot(date.plus_days(rung as u64));
        let captured = CapturedSnapshot::from_sim(&snap);
        out.push(sanitize_into(&store, &captured, &[], &cfg));
    }
    out
}

fn walk_full(snaps: &[SanitizedSnapshot]) -> usize {
    snaps.iter().map(|s| compute_atoms(s).len()).sum()
}

fn walk_incremental(snaps: &[SanitizedSnapshot], par: Parallelism) -> usize {
    let mut total = 0;
    let mut prev: Option<(&SanitizedSnapshot, IncrementalState)> = None;
    for snap in snaps {
        let (set, state) = step(prev.take(), snap, par, None);
        total += set.len();
        prev = Some((snap, state));
    }
    total
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let snaps = ladder();
    let par = Parallelism::serial();

    // Honest comparison: the chained walk must reproduce every rung's
    // atoms byte for byte before its speed means anything.
    {
        let (set0, state0) = compute_full(&snaps[0], par, None);
        assert_eq!(set0, compute_atoms(&snaps[0]));
        let mut prev = Some((&snaps[0], state0));
        for snap in &snaps[1..] {
            let (set, state) = step(prev.take(), snap, par, None);
            let scratch = compute_atoms(snap);
            assert_eq!(
                set.interned_paths(),
                scratch.interned_paths(),
                "interned paths must match scratch"
            );
            assert_eq!(set, scratch, "chained rung must match scratch");
            prev = Some((snap, state));
        }
    }

    let prefixes: usize = snaps.iter().map(SanitizedSnapshot::prefix_count).sum();
    let mut group = c.benchmark_group("incremental_vs_full");
    group.sample_size(10);
    group.throughput(Throughput::Elements(prefixes as u64));
    group.bench_function("full_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_full(&snaps)))
    });
    group.bench_function("incremental_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_incremental(&snaps, par)))
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
