//! Valley-free propagation throughput: units routed per second over a
//! mid-size topology, with and without selective-export filtering.

use bgp_sim::addressing::Allocation;
use bgp_sim::policy::{PolicySet, UnitId};
use bgp_sim::routing::{PropagationCtx, Propagator};
use bgp_sim::{Era, Topology};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn setup() -> (Topology, PolicySet) {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let topo = Topology::generate(&era.topology);
    let alloc = Allocation::generate(&topo, &era.addressing);
    let policy = PolicySet::generate(&topo, &alloc, &era.policy);
    (topo, policy)
}

fn bench_propagation(c: &mut Criterion) {
    let (topo, policy) = setup();
    let propagator = Propagator::new(&topo);
    let ctx = PropagationCtx::default();

    let plain: Vec<UnitId> = policy
        .units
        .iter()
        .enumerate()
        .filter(|(_, u)| u.selective_depth == 0)
        .map(|(i, _)| i as UnitId)
        .take(64)
        .collect();
    let selective: Vec<UnitId> = policy
        .units
        .iter()
        .enumerate()
        .filter(|(_, u)| u.selective_depth > 0)
        .map(|(i, _)| i as UnitId)
        .take(64)
        .collect();

    let mut group = c.benchmark_group("propagation");
    group.throughput(Throughput::Elements(plain.len() as u64));
    group.bench_function("plain_units", |b| {
        b.iter(|| {
            for &u in &plain {
                let r = propagator.propagate(&policy.units[u as usize], u, &ctx);
                std::hint::black_box(r.reachable_count());
            }
        })
    });
    group.throughput(Throughput::Elements(selective.len() as u64));
    group.bench_function("selective_units", |b| {
        b.iter(|| {
            for &u in &selective {
                let r = propagator.propagate(&policy.units[u as usize], u, &ctx);
                std::hint::black_box(r.reachable_count());
            }
        })
    });
    // Path extraction at a vantage point (the snapshot hot path).
    let unit = plain[0];
    let routing = propagator.propagate(&policy.units[unit as usize], unit, &ctx);
    let vp = (topo.len() / 2) as u32;
    group.bench_function("path_reconstruction", |b| {
        b.iter(|| std::hint::black_box(routing.as_path(&topo, vp)))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
