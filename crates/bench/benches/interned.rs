//! Interned columnar store vs owned-table atom computation.
//!
//! The same 12-rung small-churn ladder as `benches/incremental.rs`, walked
//! two ways from identical inputs:
//!
//! * **owned_ladder** — the pre-store representation: every rung holds
//!   `Vec<(Prefix, AsPath)>` tables and the atom scan re-interns full
//!   `AsPath` values into a per-snapshot table (hash + compare on the
//!   whole path, once per table entry);
//! * **interned_ladder** — the columnar representation: rungs share one
//!   [`SnapshotStore`], tables hold `(PrefixId, PathId)` pairs, and the
//!   scan groups by `u32` ids (the real `compute_atoms`, which also runs
//!   the assemble stage the owned walk skips — the comparison is biased
//!   *against* the interned side).
//!
//! Both walks are asserted to produce the same atom partition before
//! anything is timed. Peak-memory numbers for the two representations come
//! from the separate `store_rss` binary (one process per mode, VmHWM).

use atoms_core::atom::compute_atoms;
use atoms_core::sanitize::{sanitize_into, SanitizeConfig, SanitizedSnapshot};
use bgp_collect::CapturedSnapshot;
use bgp_sim::{Era, Scenario};
use bgp_types::{AsPath, Family, Prefix, SimTime, SnapshotStore};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::{BTreeMap, HashMap};

const RUNGS: usize = 12;

fn ladder() -> Vec<SanitizedSnapshot> {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let churn = era.churn[0] / 32.0;
    let mut scenario = Scenario::build(era);
    let cfg = SanitizeConfig::default();
    let store = SnapshotStore::new();
    let mut out = Vec::with_capacity(RUNGS);
    for rung in 0..RUNGS {
        if rung > 0 {
            scenario.perturb_units(churn, 0xBE4C + rung as u64);
        }
        let snap = scenario.snapshot(date.plus_days(rung as u64));
        let captured = CapturedSnapshot::from_sim(&snap);
        out.push(sanitize_into(&store, &captured, &[], &cfg));
    }
    out
}

/// The pre-store scan: per-snapshot path interning keyed by the owned
/// `AsPath` (hashing the full path per entry), then grouping by signature.
/// Returns the number of atoms.
fn owned_atoms(tables: &[Vec<(Prefix, AsPath)>]) -> usize {
    let mut interner: HashMap<&AsPath, u32> = HashMap::new();
    let mut next = 0u32;
    let mut signatures: BTreeMap<Prefix, Vec<(u16, u32)>> = BTreeMap::new();
    for (peer_idx, table) in tables.iter().enumerate() {
        for (prefix, path) in table {
            let id = *interner.entry(path).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            signatures
                .entry(*prefix)
                .or_default()
                .push((peer_idx as u16, id));
        }
    }
    let mut groups: HashMap<&[(u16, u32)], usize> = HashMap::new();
    for signature in signatures.values() {
        *groups.entry(signature.as_slice()).or_default() += 1;
    }
    groups.len()
}

fn walk_owned(owned: &[Vec<Vec<(Prefix, AsPath)>>]) -> usize {
    owned.iter().map(|tables| owned_atoms(tables)).sum()
}

fn walk_interned(snaps: &[SanitizedSnapshot]) -> usize {
    snaps.iter().map(|s| compute_atoms(s).len()).sum()
}

fn bench_interned_vs_owned(c: &mut Criterion) {
    let snaps = ladder();
    // The owned walk reads pre-materialized tables: resolution cost stays
    // outside the timed region on both sides.
    let owned: Vec<Vec<Vec<(Prefix, AsPath)>>> = snaps
        .iter()
        .map(SanitizedSnapshot::resolved_tables)
        .collect();

    // Same atom partition on both sides before the timing means anything.
    for (snap, tables) in snaps.iter().zip(&owned) {
        assert_eq!(
            compute_atoms(snap).len(),
            owned_atoms(tables),
            "owned reference must group identically"
        );
    }

    let prefixes: usize = snaps.iter().map(SanitizedSnapshot::prefix_count).sum();
    let mut group = c.benchmark_group("interned_vs_owned");
    group.sample_size(10);
    group.throughput(Throughput::Elements(prefixes as u64));
    group.bench_function("owned_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_owned(&owned)))
    });
    group.bench_function("interned_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_interned(&snaps)))
    });
    group.finish();
}

criterion_group!(benches, bench_interned_vs_owned);
criterion_main!(benches);
