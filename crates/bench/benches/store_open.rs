//! Cold-start cost of reaching a sanitized snapshot: MRT parse +
//! sanitize vs a persistent-store load.
//!
//! The same snapshot is written both ways — as a standard MRT archive
//! and as a `.pas` store file — and both loads are asserted to produce
//! the same analysis before anything is timed:
//!
//! * **mrt_parse_sanitize** — the path every analysis run used to pay:
//!   read the RIB files, decode the MRT framing, then run the full
//!   sanitize stage (filters, broken-peer removal, interning);
//! * **store_load** — open the `.pas` file, verify its checksums, and
//!   rebuild the interned arenas directly; no MRT decode, no sanitize.

use atoms_core::pipeline::{analyze_sanitized_observed, analyze_snapshot_observed, PipelineConfig};
use atoms_core::sanitize::{sanitize, SanitizedSnapshot};
use atoms_core::storedir::StoreDir;
use bgp_collect::Archive;
use bgp_sim::{Era, Scenario};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::PathBuf;

fn tmp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pa-bench-store-{tag}-{}", std::process::id()))
}

fn entry_count(s: &SanitizedSnapshot) -> usize {
    s.tables.iter().map(Vec::len).sum()
}

fn bench_store_open(c: &mut Criterion) {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let family = Family::Ipv4;
    let era = Era::for_date(date, family, Some(1.0 / 200.0));
    let mut scenario = Scenario::build(era);
    let snap = scenario.snapshot(date);

    let archive_dir = tmp_root("mrt");
    let store_root = tmp_root("pas");
    let archive = Archive::new(&archive_dir);
    archive.store_snapshot(&snap).expect("write MRT archive");

    let cfg = PipelineConfig::default();
    let store = StoreDir::new(&store_root);

    // Prime the store from the parsed snapshot, then assert the two
    // paths produce identical artifacts before the timing means anything.
    let captured = archive.load_snapshot(date, family).expect("MRT parse");
    let cold = analyze_snapshot_observed(&captured, None, &cfg, None);
    store
        .save(&cold.sanitized, &cfg.sanitize)
        .expect("store write");
    let warm_sanitized = store
        .load(date, family, &cfg.sanitize, None)
        .expect("store read")
        .expect("primed entry is a hit");
    let warm = analyze_sanitized_observed(warm_sanitized, &cfg, None);
    assert_eq!(
        cold.atoms, warm.atoms,
        "store path must reproduce the parse path exactly"
    );
    assert_eq!(
        serde_json::to_string(&cold.stats).expect("serializable"),
        serde_json::to_string(&warm.stats).expect("serializable"),
        "general statistics must be byte-identical"
    );

    let entries = entry_count(&cold.sanitized);
    let mut group = c.benchmark_group("store_open");
    group.sample_size(10);
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_function("mrt_parse_sanitize", |b| {
        b.iter(|| {
            let captured = archive.load_snapshot(date, family).expect("MRT parse");
            let s = sanitize(&captured, &[], &cfg.sanitize);
            std::hint::black_box(entry_count(&s))
        })
    });
    group.bench_function("store_load", |b| {
        b.iter(|| {
            let s = store
                .load(date, family, &cfg.sanitize, None)
                .expect("store read")
                .expect("hit");
            std::hint::black_box(entry_count(&s))
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&archive_dir);
    let _ = std::fs::remove_dir_all(&store_root);
}

criterion_group!(benches, bench_store_open);
criterion_main!(benches);
