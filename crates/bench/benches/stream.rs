//! Sustained streaming throughput vs per-checkpoint batch recomputation.
//!
//! The workload is twelve consecutive 4-hour update windows of the 2016
//! scenario riding on one base RIB snapshot — the daily-churn shape of
//! the quarterly sweep, consumed as a live feed instead of a snapshot
//! ladder. Two walks over the same batches:
//!
//! * `streamed_ladder`: a [`StreamEngine`] ingests every batch and
//!   checkpoints after each rung (windowed incremental recomputes);
//! * `batch_ladder`: the non-streaming alternative — replay each rung,
//!   then sanitize into a fresh store and recompute the atoms whole.
//!
//! Outputs are asserted equal at every checkpoint before timing (the
//! convergence invariant), so the throughput difference is honest.
//! Criterion's element throughput is the sustained updates/sec figure
//! recorded in BENCH_stream.json; the pre-bench instrumented pass prints
//! the per-checkpoint recompute latencies that accompany it.

use atoms_core::atom::compute_atoms_with;
use atoms_core::parallel::Parallelism;
use atoms_core::sanitize::{sanitize_with, SanitizeConfig};
use atoms_core::stream::{RecomputeWindow, StreamConfig, StreamEngine};
use bgp_collect::{CapturedSnapshot, CapturedUpdates, FeedBatch, ReplayState};
use bgp_sim::{generate_window, Era, Scenario};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const RUNGS: usize = 12;

fn workload() -> (CapturedSnapshot, Vec<FeedBatch>) {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let mut scenario = Scenario::build(era);
    let base = CapturedSnapshot::from_sim(&scenario.snapshot(date));
    let mut batches = Vec::with_capacity(RUNGS);
    for rung in 0..RUNGS {
        let events = generate_window(
            &mut scenario,
            date.plus_days(rung as u64),
            4,
            0xBE4C + rung as u64,
        );
        let upd = CapturedUpdates::from_sim(&events);
        batches.push(FeedBatch {
            records: upd.records,
            warnings: upd.warnings,
            ..Default::default()
        });
    }
    (base, batches)
}

fn stream_cfg() -> StreamConfig {
    StreamConfig {
        window: RecomputeWindow::Updates(256),
        ..Default::default()
    }
}

fn walk_streamed(base: &CapturedSnapshot, batches: &[FeedBatch]) -> usize {
    let mut engine = StreamEngine::new(base, stream_cfg(), None);
    let mut total = 0;
    for batch in batches {
        engine.ingest_batch(batch, None).unwrap();
        engine.checkpoint(None).unwrap();
        total += engine.atoms().len();
    }
    total
}

/// The non-streaming alternative: fold each rung into the replay, then
/// derive its atoms from scratch (fresh store, whole-set computation).
fn walk_batch(base: &CapturedSnapshot, batches: &[FeedBatch], par: Parallelism) -> usize {
    let mut replay = ReplayState::from_snapshot(base);
    let mut warnings = Vec::new();
    let mut total = 0;
    for batch in batches {
        warnings.extend(batch.warnings.iter().cloned());
        for r in &batch.records {
            replay.apply(r);
        }
        let snap = replay.to_snapshot(base);
        let sanitized = sanitize_with(&snap, &warnings, &SanitizeConfig::default(), par);
        total += compute_atoms_with(&sanitized, par).len();
    }
    total
}

fn bench_stream(c: &mut Criterion) {
    let (base, batches) = workload();
    let updates: usize = batches.iter().map(|b| b.records.len()).sum();
    let par = Parallelism::serial();

    // Honest comparison first: every streamed checkpoint must equal the
    // from-scratch recompute of the same replayed state. The instrumented
    // pass also yields the per-checkpoint recompute latencies reported in
    // BENCH_stream.json.
    {
        let metrics = atoms_core::obs::Metrics::new();
        let mut engine = StreamEngine::new(&base, stream_cfg(), Some(&metrics));
        let mut lat_ms = Vec::with_capacity(RUNGS);
        for batch in &batches {
            // A rung's latency is fold-to-checkpoint: the windowed
            // recomputes inside the batch plus the forcing derivation.
            let t = Instant::now();
            engine.ingest_batch(batch, Some(&metrics)).unwrap();
            engine.checkpoint(Some(&metrics)).unwrap();
            lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
            engine.verify_convergence().unwrap();
        }
        let mean = lat_ms.iter().sum::<f64>() / lat_ms.len() as f64;
        let max = lat_ms.iter().cloned().fold(0.0f64, f64::max);
        eprintln!(
            "stream: {updates} updates over {RUNGS} rungs, {} windowed recomputes; \
             per-checkpoint fold+derive latency mean {mean:.2} ms, max {max:.2} ms \
             (all checkpoints converged)",
            metrics.counter("stream.recomputes")
        );
    }

    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(updates as u64));
    group.bench_function("streamed_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_streamed(&base, &batches)))
    });
    group.bench_function("batch_ladder", |b| {
        b.iter(|| std::hint::black_box(walk_batch(&base, &batches, par)))
    });
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
