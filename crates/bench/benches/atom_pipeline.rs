//! The analysis pipeline's hot path: sanitization and atom computation on
//! a mid-size captured snapshot, plus the serial-vs-parallel engine
//! comparison on the simulated 2012 scenario (the `--threads` speed knob).

use atoms_core::atom::compute_atoms;
use atoms_core::parallel::Parallelism;
use atoms_core::pipeline::{analyze_snapshot, PipelineConfig};
use atoms_core::sanitize::{sanitize, SanitizeConfig};
use bgp_collect::CapturedSnapshot;
use bgp_sim::{Era, Scenario};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn captured() -> CapturedSnapshot {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let mut scenario = Scenario::build(era);
    CapturedSnapshot::from_sim(&scenario.snapshot(date))
}

fn captured_2012() -> CapturedSnapshot {
    let date: SimTime = "2012-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 100.0));
    let mut scenario = Scenario::build(era);
    CapturedSnapshot::from_sim(&scenario.snapshot(date))
}

fn bench_pipeline(c: &mut Criterion) {
    let snap = captured();
    let cfg = SanitizeConfig::default();
    let entries = snap.entry_count();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_function("sanitize", |b| b.iter(|| sanitize(&snap, &[], &cfg)));

    let sanitized = sanitize(&snap, &[], &cfg);
    group.throughput(Throughput::Elements(sanitized.prefix_count() as u64));
    group.bench_function("compute_atoms", |b| b.iter(|| compute_atoms(&sanitized)));

    group.bench_function("snapshot_capture", |b| {
        let date: SimTime = "2016-01-15 08:00".parse().unwrap();
        let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
        let mut scenario = Scenario::build(era);
        b.iter(|| std::hint::black_box(scenario.snapshot(date)))
    });
    group.finish();
}

/// Serial vs parallel full analysis (sanitize → atoms → stats) on the 2012
/// scenario. The acceptance target is ≥2× at 4 threads; outputs are
/// asserted identical before benchmarking so the comparison is honest.
fn bench_parallel_engine(c: &mut Criterion) {
    let snap = captured_2012();
    let configs: Vec<(String, PipelineConfig)> = [1usize, 2, 4, 0]
        .iter()
        .map(|&threads| {
            let name = if threads == 0 {
                "threads-auto".to_string()
            } else {
                format!("threads-{threads}")
            };
            let cfg = PipelineConfig {
                parallelism: Parallelism::new(threads),
                ..PipelineConfig::default()
            };
            (name, cfg)
        })
        .collect();

    let serial = analyze_snapshot(&snap, None, &configs[0].1);
    for (name, cfg) in &configs[1..] {
        let parallel = analyze_snapshot(&snap, None, cfg);
        assert_eq!(parallel.atoms, serial.atoms, "{name} must match serial");
        assert_eq!(
            parallel.sanitized, serial.sanitized,
            "{name} must match serial"
        );
    }

    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(snap.entry_count() as u64));
    for (name, cfg) in &configs {
        group.bench_function(name.as_str(), |b| {
            b.iter(|| std::hint::black_box(analyze_snapshot(&snap, None, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_parallel_engine);
criterion_main!(benches);
