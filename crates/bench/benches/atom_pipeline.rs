//! The analysis pipeline's hot path: sanitization and atom computation on
//! a mid-size captured snapshot.

use atoms_core::atom::compute_atoms;
use atoms_core::sanitize::{sanitize, SanitizeConfig};
use bgp_collect::CapturedSnapshot;
use bgp_sim::{Era, Scenario};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn captured() -> CapturedSnapshot {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let mut scenario = Scenario::build(era);
    CapturedSnapshot::from_sim(&scenario.snapshot(date))
}

fn bench_pipeline(c: &mut Criterion) {
    let snap = captured();
    let cfg = SanitizeConfig::default();
    let entries = snap.entry_count();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(entries as u64));
    group.bench_function("sanitize", |b| b.iter(|| sanitize(&snap, &[], &cfg)));

    let sanitized = sanitize(&snap, &[], &cfg);
    group.throughput(Throughput::Elements(sanitized.prefix_count() as u64));
    group.bench_function("compute_atoms", |b| b.iter(|| compute_atoms(&sanitized)));

    group.bench_function("snapshot_capture", |b| {
        let date: SimTime = "2016-01-15 08:00".parse().unwrap();
        let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
        let mut scenario = Scenario::build(era);
        b.iter(|| std::hint::black_box(scenario.snapshot(date)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
