//! MRT wire-format throughput: serialize and parse the RIB dump and update
//! stream of a mid-size snapshot.

use bgp_collect::capture::{rib_dump_bytes, tables_by_collector, updates_bytes};
use bgp_mrt::reader::{RibDumpReader, UpdatesReader};
use bgp_sim::updates::UpdateEvent;
use bgp_sim::{generate_window, Era, Scenario, SnapshotData};
use bgp_types::{Family, SimTime};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn snapshot() -> (SnapshotData, Vec<UpdateEvent>) {
    let date: SimTime = "2016-01-15 08:00".parse().unwrap();
    let era = Era::for_date(date, Family::Ipv4, Some(1.0 / 200.0));
    let mut scenario = Scenario::build(era);
    let snap = scenario.snapshot(date);
    let events = generate_window(&mut scenario, date, 4, 1);
    (snap, events)
}

fn bench_mrt(c: &mut Criterion) {
    let (snap, events) = snapshot();
    let tables = tables_by_collector(&snap);
    let (_, first_tables) = &tables[0];
    let entry_count: usize = first_tables.iter().map(|(_, e)| e.len()).sum();

    let mut group = c.benchmark_group("mrt_rib");
    group.throughput(Throughput::Elements(entry_count as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| rib_dump_bytes(snap.timestamp, first_tables).expect("serialize"))
    });
    let bytes = rib_dump_bytes(snap.timestamp, first_tables).expect("serialize");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| RibDumpReader::read_all(&bytes[..]).expect("parse"))
    });
    group.finish();

    let refs: Vec<&UpdateEvent> = events.iter().collect();
    let mut group = c.benchmark_group("mrt_updates");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| updates_bytes(&refs, Family::Ipv4).expect("serialize"))
    });
    let bytes = updates_bytes(&refs, Family::Ipv4).expect("serialize");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| UpdatesReader::read_all(&bytes[..]).expect("parse"))
    });
    group.finish();
}

criterion_group!(benches, bench_mrt);
criterion_main!(benches);
