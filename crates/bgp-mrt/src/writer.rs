//! MRT writer: RIB dumps, update files, and deliberate corruption modes.
//!
//! Output is deterministic: identical input produces identical bytes, which
//! the archive layer relies on for reproducible synthetic snapshots.

use crate::attrs::{self, MpReach, MpReachForm, ParsedAttrs};
use crate::nlri;
use crate::record::PeerIndexTable;
use crate::{
    SUBTYPE_BGP4MP_MESSAGE_AS4, SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH, SUBTYPE_PEER_INDEX_TABLE,
    SUBTYPE_RIB_IPV4_UNICAST, SUBTYPE_RIB_IPV4_UNICAST_ADDPATH, SUBTYPE_RIB_IPV6_UNICAST,
    SUBTYPE_RIB_IPV6_UNICAST_ADDPATH, TYPE_BGP4MP, TYPE_TABLE_DUMP_V2,
};
use bgp_types::{Asn, Family, Prefix, SimTime, UpdateRecord};
use bytes::{BufMut, BytesMut};
use std::io::{self, Write};
use std::net::IpAddr;

/// Maximum size of a BGP message (RFC 4271). Updates whose prefixes do not
/// fit are split across messages, exactly as a real router would.
pub const MAX_BGP_MESSAGE: usize = 4096;

/// BGP message header size (marker + length + type).
const BGP_HEADER: usize = 19;

/// Writes one framed MRT record.
pub fn write_raw(
    w: &mut impl Write,
    timestamp: u32,
    mrt_type: u16,
    subtype: u16,
    body: &[u8],
) -> io::Result<()> {
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&timestamp.to_be_bytes());
    header[4..6].copy_from_slice(&mrt_type.to_be_bytes());
    header[6..8].copy_from_slice(&subtype.to_be_bytes());
    header[8..12].copy_from_slice(&(body.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(body)
}

fn encode_peer_index_table(table: &PeerIndexTable) -> BytesMut {
    let mut body = BytesMut::with_capacity(16 + table.peers.len() * 12);
    body.put_u32(table.collector_bgp_id);
    body.put_u16(table.view_name.len() as u16);
    body.put_slice(table.view_name.as_bytes());
    body.put_u16(table.peers.len() as u16);
    for peer in &table.peers {
        // Always use 4-byte ASNs (bit 1); bit 0 marks IPv6 addresses.
        let type_byte = match peer.addr {
            IpAddr::V4(_) => 0x02,
            IpAddr::V6(_) => 0x03,
        };
        body.put_u8(type_byte);
        body.put_u32(peer.bgp_id);
        match peer.addr {
            IpAddr::V4(a) => body.put_u32(u32::from(a)),
            IpAddr::V6(a) => body.put_u128(u128::from(a)),
        }
        body.put_u32(peer.asn.0);
    }
    body
}

/// Writes a TABLE_DUMP_V2 RIB dump: one PEER_INDEX_TABLE, then one RIB
/// record per prefix.
#[derive(Debug)]
pub struct RibDumpWriter<W> {
    w: W,
    sequence: u32,
    wrote_table: bool,
}

impl<W: Write> RibDumpWriter<W> {
    /// Wraps a byte sink.
    pub fn new(w: W) -> Self {
        RibDumpWriter {
            w,
            sequence: 0,
            wrote_table: false,
        }
    }

    /// Writes the PEER_INDEX_TABLE. Must be called once, before any routes.
    pub fn write_peer_table(
        &mut self,
        timestamp: SimTime,
        table: &PeerIndexTable,
    ) -> io::Result<()> {
        assert!(!self.wrote_table, "peer table already written");
        let body = encode_peer_index_table(table);
        write_raw(
            &mut self.w,
            timestamp.unix() as u32,
            TYPE_TABLE_DUMP_V2,
            SUBTYPE_PEER_INDEX_TABLE,
            &body,
        )?;
        self.wrote_table = true;
        Ok(())
    }

    /// Writes one RIB record: a prefix plus `(peer index, attrs)` per peer
    /// carrying it. Entries must reference the previously written table.
    pub fn write_route(
        &mut self,
        timestamp: SimTime,
        prefix: Prefix,
        entries: &[(u16, ParsedAttrs)],
    ) -> io::Result<()> {
        assert!(self.wrote_table, "peer table must be written first");
        let subtype = match prefix.family() {
            Family::Ipv4 => SUBTYPE_RIB_IPV4_UNICAST,
            Family::Ipv6 => SUBTYPE_RIB_IPV6_UNICAST,
        };
        let mut body = BytesMut::with_capacity(16 + entries.len() * 48);
        body.put_u32(self.sequence);
        nlri::encode_prefix(&mut body, prefix);
        body.put_u16(entries.len() as u16);
        for (peer_index, attrs) in entries {
            body.put_u16(*peer_index);
            body.put_u32(timestamp.unix() as u32);
            let attr_bytes = attrs::encode_attrs(attrs, 4, MpReachForm::Abbreviated);
            body.put_u16(attr_bytes.len() as u16);
            body.put_slice(&attr_bytes);
        }
        self.sequence += 1;
        write_raw(
            &mut self.w,
            timestamp.unix() as u32,
            TYPE_TABLE_DUMP_V2,
            subtype,
            &body,
        )
    }

    /// Writes an ADD-PATH RIB record stub that readers without RFC 8050
    /// support (including ours) will flag and skip — used by artifact
    /// injection.
    pub fn write_addpath_stub(&mut self, timestamp: SimTime, family: Family) -> io::Result<()> {
        let subtype = match family {
            Family::Ipv4 => SUBTYPE_RIB_IPV4_UNICAST_ADDPATH,
            Family::Ipv6 => SUBTYPE_RIB_IPV6_UNICAST_ADDPATH,
        };
        // A minimal plausible body; content is irrelevant since the reader
        // refuses the subtype before decoding.
        let body = [0u8; 8];
        write_raw(
            &mut self.w,
            timestamp.unix() as u32,
            TYPE_TABLE_DUMP_V2,
            subtype,
            &body,
        )
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Deliberate corruption applied when writing an update, reproducing the
/// artifact signatures of the paper's Appendix A8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Emit the record under the ADD-PATH subtype (9): readers report
    /// "unknown BGP4MP record subtype 9".
    AddPathSubtype,
    /// Append a second ORIGIN attribute: readers report
    /// "Duplicate Path Attribute".
    DuplicateAttribute,
    /// Truncate the MP_REACH_NLRI attribute body: readers report
    /// "Invalid MP(UN)REACH NLRI".
    InvalidMpReach,
}

/// Writes BGP4MP MESSAGE_AS4 update records.
#[derive(Debug)]
pub struct UpdateDumpWriter<W> {
    w: W,
    local_asn: Asn,
    local_addr: IpAddr,
}

/// Splits an update's prefixes so each message stays under
/// [`MAX_BGP_MESSAGE`]. Returns `(announced chunks, withdrawn chunks)`
/// per family-specific message.
fn partition_families(rec: &UpdateRecord) -> [(Vec<Prefix>, Vec<Prefix>); 2] {
    let mut v4 = (Vec::new(), Vec::new());
    let mut v6 = (Vec::new(), Vec::new());
    for p in &rec.announced {
        match p.family() {
            Family::Ipv4 => v4.0.push(*p),
            Family::Ipv6 => v6.0.push(*p),
        }
    }
    for p in &rec.withdrawn {
        match p.family() {
            Family::Ipv4 => v4.1.push(*p),
            Family::Ipv6 => v6.1.push(*p),
        }
    }
    [v4, v6]
}

impl<W: Write> UpdateDumpWriter<W> {
    /// Wraps a byte sink; `local_asn`/`local_addr` identify the collector
    /// side of every session.
    pub fn new(w: W, local_asn: Asn, local_addr: IpAddr) -> Self {
        UpdateDumpWriter {
            w,
            local_asn,
            local_addr,
        }
    }

    /// Writes an update, splitting it into as many BGP messages as needed to
    /// respect [`MAX_BGP_MESSAGE`] and separating families (IPv4 prefixes in
    /// classic NLRI, IPv6 in MP_REACH/MP_UNREACH). Returns the number of MRT
    /// records written.
    pub fn write_update(&mut self, rec: &UpdateRecord) -> io::Result<usize> {
        let mut written = 0;
        let [(v4a, v4w), (v6a, v6w)] = partition_families(rec);

        // IPv4 messages: header + withdrawn block + attrs + NLRI.
        if !v4a.is_empty() || !v4w.is_empty() {
            let base_attrs = self.v4_attrs(rec);
            let attr_bytes = attrs::encode_attrs(&base_attrs, 4, MpReachForm::Full);
            let budget = MAX_BGP_MESSAGE - BGP_HEADER - 4 - attr_bytes.len();
            for (ann, wd) in pack_prefixes(&v4a, &v4w, budget) {
                self.write_message(rec, &attr_bytes, &wd, &ann, None)?;
                written += 1;
            }
        }
        // IPv6 messages: prefixes ride inside MP attributes.
        if !v6a.is_empty() || !v6w.is_empty() {
            // Budget: leave room for the MP attribute headers and next hop.
            let base_attrs = self.v6_attrs(rec, &[], &[]);
            // Reserve room for the MP attribute headers, next hop, and
            // reserved bytes (≈ 32 bytes when both MP attributes appear).
            let attr_overhead = attrs::encode_attrs(&base_attrs, 4, MpReachForm::Full).len() + 64;
            let budget = MAX_BGP_MESSAGE - BGP_HEADER - 4 - attr_overhead;
            for (ann, wd) in pack_prefixes(&v6a, &v6w, budget) {
                let a = self.v6_attrs(rec, &ann, &wd);
                let attr_bytes = attrs::encode_attrs(&a, 4, MpReachForm::Full);
                self.write_message(rec, &attr_bytes, &[], &[], None)?;
                written += 1;
            }
        }
        Ok(written)
    }

    fn v4_attrs(&self, rec: &UpdateRecord) -> ParsedAttrs {
        ParsedAttrs {
            origin: rec.attrs.origin,
            as_path: rec.attrs.path.clone(),
            next_hop: match rec.peer.addr {
                IpAddr::V4(a) => Some(a),
                IpAddr::V6(_) => Some(std::net::Ipv4Addr::new(192, 0, 2, 1)),
            },
            communities: rec.attrs.communities.clone(),
            ..Default::default()
        }
    }

    fn v6_attrs(&self, rec: &UpdateRecord, ann: &[Prefix], wd: &[Prefix]) -> ParsedAttrs {
        let mut attrs = ParsedAttrs {
            origin: rec.attrs.origin,
            as_path: rec.attrs.path.clone(),
            communities: rec.attrs.communities.clone(),
            ..Default::default()
        };
        if !ann.is_empty() {
            attrs.mp_reach = Some(MpReach {
                next_hop: match rec.peer.addr {
                    IpAddr::V6(a) => Some(a),
                    IpAddr::V4(_) => Some("2001:db8::1".parse().expect("static addr")),
                },
                nlri: ann.to_vec(),
            });
        }
        if !wd.is_empty() {
            attrs.mp_unreach = Some(wd.to_vec());
        }
        attrs
    }

    fn write_message(
        &mut self,
        rec: &UpdateRecord,
        attr_bytes: &[u8],
        withdrawn: &[Prefix],
        announced: &[Prefix],
        _ts: Option<SimTime>,
    ) -> io::Result<()> {
        let body = encode_bgp4mp_update_body(
            rec.peer.asn,
            rec.peer.addr,
            self.local_asn,
            self.local_addr,
            attr_bytes,
            withdrawn,
            announced,
        );
        write_raw(
            &mut self.w,
            rec.timestamp.unix() as u32,
            TYPE_BGP4MP,
            SUBTYPE_BGP4MP_MESSAGE_AS4,
            &body,
        )
    }

    /// Writes a deliberately corrupted version of `rec` that triggers the
    /// chosen warning class in tolerant readers.
    pub fn write_corrupted(&mut self, rec: &UpdateRecord, mode: CorruptionMode) -> io::Result<()> {
        match mode {
            CorruptionMode::AddPathSubtype => {
                let attrs = self.v4_attrs(rec);
                let attr_bytes = attrs::encode_attrs(&attrs, 4, MpReachForm::Full);
                let v4: Vec<Prefix> = rec
                    .announced
                    .iter()
                    .copied()
                    .filter(|p| p.family() == Family::Ipv4)
                    .collect();
                let body = encode_bgp4mp_update_body(
                    rec.peer.asn,
                    rec.peer.addr,
                    self.local_asn,
                    self.local_addr,
                    &attr_bytes,
                    &[],
                    &v4,
                );
                write_raw(
                    &mut self.w,
                    rec.timestamp.unix() as u32,
                    TYPE_BGP4MP,
                    SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH,
                    &body,
                )
            }
            CorruptionMode::DuplicateAttribute => {
                let attrs = self.v4_attrs(rec);
                let mut attr_bytes = attrs::encode_attrs(&attrs, 4, MpReachForm::Full);
                // Append a second ORIGIN attribute (flags 0x40, type 1,
                // length 1, value 0).
                attr_bytes.extend_from_slice(&[0x40, 0x01, 0x01, 0x00]);
                let v4: Vec<Prefix> = rec
                    .announced
                    .iter()
                    .copied()
                    .filter(|p| p.family() == Family::Ipv4)
                    .collect();
                let body = encode_bgp4mp_update_body(
                    rec.peer.asn,
                    rec.peer.addr,
                    self.local_asn,
                    self.local_addr,
                    &attr_bytes,
                    &[],
                    &v4,
                );
                write_raw(
                    &mut self.w,
                    rec.timestamp.unix() as u32,
                    TYPE_BGP4MP,
                    SUBTYPE_BGP4MP_MESSAGE_AS4,
                    &body,
                )
            }
            CorruptionMode::InvalidMpReach => {
                let attrs = self.v4_attrs(rec);
                let mut attr_bytes = attrs::encode_attrs(&attrs, 4, MpReachForm::Full);
                // Append an MP_REACH_NLRI with an unsupported AFI (99).
                attr_bytes.extend_from_slice(&[0x80, 0x0E, 0x05, 0x00, 0x63, 0x01, 0x00, 0x00]);
                let body = encode_bgp4mp_update_body(
                    rec.peer.asn,
                    rec.peer.addr,
                    self.local_asn,
                    self.local_addr,
                    &attr_bytes,
                    &[],
                    &[],
                );
                write_raw(
                    &mut self.w,
                    rec.timestamp.unix() as u32,
                    TYPE_BGP4MP,
                    SUBTYPE_BGP4MP_MESSAGE_AS4,
                    &body,
                )
            }
        }
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Greedily packs announced/withdrawn prefixes into chunks whose total wire
/// size stays within `budget` bytes. Withdrawals and announcements share a
/// message when they fit.
fn pack_prefixes(
    announced: &[Prefix],
    withdrawn: &[Prefix],
    budget: usize,
) -> Vec<(Vec<Prefix>, Vec<Prefix>)> {
    let budget = budget.max(64); // always fits at least a handful of prefixes
    let mut chunks = Vec::new();
    let mut cur_a = Vec::new();
    let mut cur_w = Vec::new();
    let mut used = 0usize;
    let push_chunk =
        |a: &mut Vec<Prefix>, w: &mut Vec<Prefix>, chunks: &mut Vec<(Vec<Prefix>, Vec<Prefix>)>| {
            if !a.is_empty() || !w.is_empty() {
                chunks.push((std::mem::take(a), std::mem::take(w)));
            }
        };
    for &p in withdrawn {
        let sz = nlri::encoded_len(p);
        if used + sz > budget {
            push_chunk(&mut cur_a, &mut cur_w, &mut chunks);
            used = 0;
        }
        cur_w.push(p);
        used += sz;
    }
    for &p in announced {
        let sz = nlri::encoded_len(p);
        if used + sz > budget {
            push_chunk(&mut cur_a, &mut cur_w, &mut chunks);
            used = 0;
        }
        cur_a.push(p);
        used += sz;
    }
    push_chunk(&mut cur_a, &mut cur_w, &mut chunks);
    if chunks.is_empty() {
        chunks.push((Vec::new(), Vec::new()));
    }
    chunks
}

#[allow(clippy::too_many_arguments)]
fn encode_bgp4mp_update_body(
    peer_asn: Asn,
    peer_addr: IpAddr,
    local_asn: Asn,
    local_addr: IpAddr,
    attr_bytes: &[u8],
    withdrawn: &[Prefix],
    announced: &[Prefix],
) -> BytesMut {
    let mut body = BytesMut::with_capacity(64 + attr_bytes.len());
    body.put_u32(peer_asn.0);
    body.put_u32(local_asn.0);
    body.put_u16(0); // interface index
    match (peer_addr, local_addr) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            body.put_u16(1);
            body.put_u32(u32::from(p));
            body.put_u32(u32::from(l));
        }
        (IpAddr::V6(p), IpAddr::V6(l)) => {
            body.put_u16(2);
            body.put_u128(u128::from(p));
            body.put_u128(u128::from(l));
        }
        // Mixed families cannot occur on one session; normalize to v4 slot
        // with a mapped collector address.
        (IpAddr::V4(p), IpAddr::V6(_)) => {
            body.put_u16(1);
            body.put_u32(u32::from(p));
            body.put_u32(u32::from(std::net::Ipv4Addr::new(198, 51, 100, 1)));
        }
        (IpAddr::V6(p), IpAddr::V4(_)) => {
            body.put_u16(2);
            body.put_u128(u128::from(p));
            body.put_u128(u128::from(std::net::Ipv6Addr::LOCALHOST));
        }
    }

    // BGP message.
    let mut wd = BytesMut::new();
    for &p in withdrawn {
        nlri::encode_prefix(&mut wd, p);
    }
    let mut nl = BytesMut::new();
    for &p in announced {
        nlri::encode_prefix(&mut nl, p);
    }
    let msg_len = BGP_HEADER + 2 + wd.len() + 2 + attr_bytes.len() + nl.len();
    debug_assert!(msg_len <= MAX_BGP_MESSAGE, "caller must pack within budget");
    body.put_slice(&[0xFF; 16]);
    body.put_u16(msg_len as u16);
    body.put_u8(2); // UPDATE
    body.put_u16(wd.len() as u16);
    body.put_slice(&wd);
    body.put_u16(attr_bytes.len() as u16);
    body.put_slice(attr_bytes);
    body.put_slice(&nl);
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{MrtReader, ReadItem, RibDumpReader, UpdatesReader};
    use crate::record::PeerEntry;
    use crate::warnings::WarningKind;
    use bgp_types::{PeerKey, RouteAttrs};

    fn peer() -> PeerKey {
        PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap())
    }

    fn collector() -> (Asn, IpAddr) {
        (Asn(12654), "198.51.100.1".parse().unwrap())
    }

    fn simple_update(prefixes: &[&str]) -> UpdateRecord {
        UpdateRecord::announce(
            SimTime::from_ymd_hms(2024, 10, 15, 8, 0, 0),
            peer(),
            prefixes.iter().map(|s| s.parse().unwrap()).collect(),
            RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
        )
    }

    #[test]
    fn update_round_trip_v4() {
        let rec = simple_update(&["192.0.2.0/24", "198.51.100.0/24"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        assert_eq!(w.write_update(&rec).unwrap(), 1);
        let bytes = w.into_inner();
        let (updates, warnings) = UpdatesReader::read_all(&bytes[..]).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].announced, rec.announced);
        assert_eq!(updates[0].peer, rec.peer);
        assert_eq!(updates[0].attrs.path, rec.attrs.path);
        assert_eq!(updates[0].timestamp, rec.timestamp);
    }

    #[test]
    fn update_round_trip_v6() {
        let rec = simple_update(&["2001:db8::/32", "240a:a000::/20"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        assert_eq!(w.write_update(&rec).unwrap(), 1);
        let bytes = w.into_inner();
        let (updates, warnings) = UpdatesReader::read_all(&bytes[..]).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].announced, rec.announced);
    }

    #[test]
    fn v6_session_round_trip() {
        // Peer and collector both on IPv6 addresses: the BGP4MP preamble
        // uses AFI 2 with 16-byte addresses.
        let peer6 = PeerKey::new(Asn(6939), "2001:7f8::1".parse().unwrap());
        let rec = UpdateRecord::announce(
            SimTime::from_unix(777),
            peer6,
            vec!["2001:db8::/32".parse().unwrap()],
            RouteAttrs::from_path("6939 64496".parse().unwrap()),
        );
        let mut w =
            UpdateDumpWriter::new(Vec::new(), Asn(12654), "2001:db8:ffff::1".parse().unwrap());
        assert_eq!(w.write_update(&rec).unwrap(), 1);
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(updates[0].peer, peer6);
        assert_eq!(updates[0].announced, rec.announced);
    }

    #[test]
    fn update_with_withdrawals_round_trip() {
        let mut rec = simple_update(&["192.0.2.0/24"]);
        rec.withdrawn = vec!["203.0.113.0/24".parse().unwrap()];
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w.write_update(&rec).unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(updates[0].withdrawn, rec.withdrawn);
        assert_eq!(updates[0].announced, rec.announced);
    }

    #[test]
    fn oversized_update_splits_into_multiple_messages() {
        // 2000 /24s * 4 bytes each ≈ 8 kB > MAX_BGP_MESSAGE: must split.
        let prefixes: Vec<Prefix> = (0..2000u32)
            .map(|i| Prefix::v4(((10 << 24) | (i << 8)) & 0xFFFF_FF00, 24).unwrap())
            .collect();
        let rec = UpdateRecord::announce(
            SimTime::from_unix(0),
            peer(),
            prefixes.clone(),
            RouteAttrs::from_path("3356 64496".parse().unwrap()),
        );
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        let n = w.write_update(&rec).unwrap();
        assert!(n >= 2, "expected a split, got {n} message(s)");
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(warnings.is_empty());
        assert_eq!(updates.len(), n);
        let all: Vec<Prefix> = updates.iter().flat_map(|u| u.announced.clone()).collect();
        assert_eq!(all, prefixes);
    }

    #[test]
    fn mixed_family_update_splits_by_family() {
        let rec = simple_update(&["192.0.2.0/24", "2001:db8::/32"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        let n = w.write_update(&rec).unwrap();
        assert_eq!(n, 2);
        let (updates, _) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert_eq!(updates.len(), 2);
        let families: Vec<_> = updates.iter().map(|u| u.announced[0].family()).collect();
        assert_eq!(families, vec![Family::Ipv4, Family::Ipv6]);
    }

    fn sample_table() -> PeerIndexTable {
        PeerIndexTable {
            collector_bgp_id: 0xC0000201,
            view_name: String::new(),
            peers: vec![
                PeerEntry {
                    bgp_id: 1,
                    addr: "10.0.0.1".parse().unwrap(),
                    asn: Asn(3356),
                },
                PeerEntry {
                    bgp_id: 2,
                    addr: "2001:db8::2".parse().unwrap(),
                    asn: Asn(6939),
                },
            ],
        }
    }

    #[test]
    fn rib_dump_round_trip() {
        let ts = SimTime::from_ymd_hms(2024, 10, 15, 8, 0, 0);
        let mut w = RibDumpWriter::new(Vec::new());
        w.write_peer_table(ts, &sample_table()).unwrap();
        let attrs0 = ParsedAttrs::from_path("3356 1299 64496".parse().unwrap());
        let attrs1 = ParsedAttrs::from_path("6939 64496".parse().unwrap());
        w.write_route(
            ts,
            "192.0.2.0/24".parse().unwrap(),
            &[(0, attrs0.clone()), (1, attrs1.clone())],
        )
        .unwrap();
        w.write_route(ts, "2001:db8::/32".parse().unwrap(), &[(1, attrs1.clone())])
            .unwrap();
        let dump = RibDumpReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(dump.warnings.is_empty(), "{:?}", dump.warnings);
        assert_eq!(dump.table.peers.len(), 2);
        assert_eq!(dump.routes.len(), 2);
        assert_eq!(dump.routes[0].sequence, 0);
        assert_eq!(dump.routes[1].sequence, 1);
        assert_eq!(dump.routes[0].entries.len(), 2);
        assert_eq!(dump.routes[0].entries[0].attrs.as_path, attrs0.as_path);
        let (entries, missing) = dump.entries();
        assert!(missing.is_empty());
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].0.asn, Asn(3356));
        assert_eq!(entries[2].1.prefix.family(), Family::Ipv6);
    }

    #[test]
    fn rib_dump_addpath_stub_is_flagged() {
        let ts = SimTime::from_unix(0);
        let mut w = RibDumpWriter::new(Vec::new());
        w.write_peer_table(ts, &sample_table()).unwrap();
        w.write_addpath_stub(ts, Family::Ipv4).unwrap();
        let dump = RibDumpReader::read_all(&w.into_inner()[..]).unwrap();
        assert_eq!(dump.warnings.len(), 1);
        assert!(matches!(
            dump.warnings[0].kind,
            WarningKind::UnknownSubtype {
                mrt_type: 13,
                subtype: 8
            }
        ));
    }

    #[test]
    fn corrupted_addpath_subtype_warning_names_the_peer() {
        let rec = simple_update(&["192.0.2.0/24"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w.write_corrupted(&rec, CorruptionMode::AddPathSubtype)
            .unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(updates.is_empty());
        assert_eq!(warnings.len(), 1);
        assert_eq!(
            warnings[0].kind.to_string(),
            "unknown BGP4MP record subtype 9"
        );
        assert!(warnings[0].kind.is_addpath_signature());
        assert_eq!(warnings[0].peer, Some(peer()), "peer must be attributed");
    }

    #[test]
    fn corrupted_duplicate_attribute_warning() {
        let rec = simple_update(&["192.0.2.0/24"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w.write_corrupted(&rec, CorruptionMode::DuplicateAttribute)
            .unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(updates.is_empty());
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, WarningKind::DuplicatePathAttribute);
        assert_eq!(warnings[0].peer, Some(peer()));
    }

    #[test]
    fn corrupted_mp_reach_warning() {
        let rec = simple_update(&["192.0.2.0/24"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w.write_corrupted(&rec, CorruptionMode::InvalidMpReach)
            .unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert!(updates.is_empty());
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, WarningKind::InvalidMpReachNlri);
        assert_eq!(warnings[0].peer, Some(peer()));
    }

    #[test]
    fn reader_resynchronizes_after_bad_record() {
        let rec = simple_update(&["192.0.2.0/24"]);
        let (la, laddr) = collector();
        let mut w = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w.write_corrupted(&rec, CorruptionMode::DuplicateAttribute)
            .unwrap();
        w.write_update(&rec).unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        assert_eq!(updates.len(), 1, "good record after bad one must survive");
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn raw_reader_frames_records() {
        let ts = SimTime::from_unix(42);
        let mut buf = Vec::new();
        write_raw(&mut buf, ts.unix() as u32, 99, 7, &[1, 2, 3]).unwrap();
        let mut r = MrtReader::new(&buf[..]);
        let raw = r.next_raw().unwrap().unwrap();
        assert_eq!(raw.timestamp, 42);
        assert_eq!(raw.mrt_type, 99);
        assert_eq!(raw.subtype, 7);
        assert_eq!(raw.body.as_ref(), &[1, 2, 3]);
        assert!(r.next_raw().unwrap().is_none());
    }

    #[test]
    fn unknown_type_becomes_warning() {
        let mut buf = Vec::new();
        write_raw(&mut buf, 0, 99, 7, &[1, 2, 3]).unwrap();
        let mut r = MrtReader::new(&buf[..]);
        match r.next().unwrap().unwrap() {
            ReadItem::Warning(w) => {
                assert_eq!(w.kind, WarningKind::UnknownType { mrt_type: 99 })
            }
            ReadItem::Record(_) => panic!("expected warning"),
        }
    }

    #[test]
    fn truncated_header_is_fatal() {
        let mut buf = Vec::new();
        write_raw(&mut buf, 0, 13, 1, &[0; 8]).unwrap();
        buf.truncate(6);
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(
            r.next_raw(),
            Err(crate::MrtError::TruncatedHeader { have: 6 })
        ));
    }

    #[test]
    fn oversized_record_is_fatal() {
        let mut buf = Vec::new();
        // Header declaring a 1 GiB body.
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&13u16.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&(1u32 << 30).to_be_bytes());
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(
            r.next_raw(),
            Err(crate::MrtError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn deterministic_output() {
        let rec = simple_update(&["192.0.2.0/24", "2001:db8::/32"]);
        let (la, laddr) = collector();
        let mut w1 = UpdateDumpWriter::new(Vec::new(), la, laddr);
        let mut w2 = UpdateDumpWriter::new(Vec::new(), la, laddr);
        w1.write_update(&rec).unwrap();
        w2.write_update(&rec).unwrap();
        assert_eq!(w1.into_inner(), w2.into_inner());
    }

    #[test]
    fn pack_prefixes_respects_budget() {
        let prefixes: Vec<Prefix> = (0..100u32)
            .map(|i| Prefix::v4((10 << 24) | (i << 8), 24).unwrap())
            .collect();
        let chunks = pack_prefixes(&prefixes, &[], 64);
        assert!(chunks.len() > 1);
        for (a, w) in &chunks {
            let size: usize = a
                .iter()
                .chain(w.iter())
                .map(|p| nlri::encoded_len(*p))
                .sum();
            assert!(size <= 64);
        }
        let total: usize = chunks.iter().map(|(a, w)| a.len() + w.len()).sum();
        assert_eq!(total, 100);
    }
}
