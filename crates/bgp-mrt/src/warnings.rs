//! Structured parse warnings.
//!
//! The paper identifies ADD-PATH-incompatible peers by the warnings
//! `bgpreader` prints (Appendix A8.3): *"unknown BGP4MP record subtype 9"*,
//! *"Duplicate Path Attribute"*, *"Invalid MP(UN)REACH NLRI"*. Our tolerant
//! reader emits the same classes as typed values so the sanitization stage
//! can match on them instead of scraping log text.

use crate::error::DecodeError;
use bgp_types::{PeerKey, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a parse warning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarningKind {
    /// An MRT type this crate does not decode.
    UnknownType {
        /// MRT type code.
        mrt_type: u16,
    },
    /// A subtype this crate does not decode — including the RFC 8050
    /// ADD-PATH subtypes, which is exactly the "unknown BGP4MP record
    /// subtype 9" signature from the paper.
    UnknownSubtype {
        /// MRT type code.
        mrt_type: u16,
        /// MRT subtype code.
        subtype: u16,
    },
    /// The same path attribute appeared twice in one attribute block.
    DuplicatePathAttribute,
    /// MP_REACH_NLRI / MP_UNREACH_NLRI could not be decoded.
    InvalidMpReachNlri,
    /// Any other per-record decode failure.
    Decode {
        /// What was being decoded when the record failed.
        context: String,
    },
    /// A BGP message whose 16-byte marker was not all-ones.
    BadMarker,
    /// A RIB record referenced a peer index with no PEER_INDEX_TABLE entry.
    MissingPeerIndex {
        /// The dangling index.
        index: u16,
    },
    /// The stream ended inside a record's 12-byte MRT header. Strict
    /// readers abort with [`MrtError::TruncatedHeader`]; recovery mode
    /// reports the tail as this warning instead.
    ///
    /// [`MrtError::TruncatedHeader`]: crate::MrtError::TruncatedHeader
    TruncatedHeader {
        /// Header bytes present (1..=11).
        have: u8,
    },
    /// The stream ended before a record's declared body length was
    /// available (recovery mode only; strict readers abort with an
    /// `UnexpectedEof` I/O error).
    TruncatedBody {
        /// The body length the header declared.
        declared: u32,
        /// Body bytes actually present.
        have: u32,
    },
    /// A record declared a body larger than the reader's sanity cap.
    /// Strict readers abort with [`MrtError::RecordTooLarge`]; recovery
    /// mode skips forward to the next plausible record boundary.
    ///
    /// [`MrtError::RecordTooLarge`]: crate::MrtError::RecordTooLarge
    OversizedRecord {
        /// The body length the header declared.
        declared: u32,
        /// The reader's record-size cap.
        cap: u32,
    },
}

impl WarningKind {
    /// Classifies a [`DecodeError`] into the warning taxonomy.
    pub fn from_decode(err: &DecodeError) -> WarningKind {
        let ctx = err.context();
        if ctx == "duplicate path attribute" {
            WarningKind::DuplicatePathAttribute
        } else if ctx == "BGP marker" {
            WarningKind::BadMarker
        } else if ctx.contains("MP_REACH") || ctx.contains("MP_UNREACH") {
            WarningKind::InvalidMpReachNlri
        } else {
            WarningKind::Decode {
                context: ctx.to_string(),
            }
        }
    }

    /// A stable, machine-readable slug for this warning class — the key
    /// used in metrics/telemetry output (`mrt.<slug>` in the observability
    /// layer's warning ledger; see the atoms-core `obs` module). Slugs
    /// deliberately omit the per-instance detail (type/subtype codes,
    /// decode context) so warnings aggregate by class.
    pub fn slug(&self) -> &'static str {
        match self {
            WarningKind::UnknownType { .. } => "unknown_type",
            WarningKind::UnknownSubtype { .. } => "unknown_subtype",
            WarningKind::DuplicatePathAttribute => "duplicate_path_attribute",
            WarningKind::InvalidMpReachNlri => "invalid_mp_reach_nlri",
            WarningKind::Decode { .. } => "decode",
            WarningKind::BadMarker => "bad_marker",
            WarningKind::MissingPeerIndex { .. } => "missing_peer_index",
            WarningKind::TruncatedHeader { .. } => "truncated_header",
            WarningKind::TruncatedBody { .. } => "truncated_body",
            WarningKind::OversizedRecord { .. } => "oversized_record",
        }
    }

    /// Returns `true` for the warning classes the paper uses to identify
    /// ADD-PATH-incompatible peers (Appendix A8.3.1).
    pub fn is_addpath_signature(&self) -> bool {
        matches!(
            self,
            WarningKind::UnknownSubtype {
                mrt_type: 16 | 17,
                subtype: 8..=11
            } | WarningKind::DuplicatePathAttribute
                | WarningKind::InvalidMpReachNlri
        )
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarningKind::UnknownType { mrt_type } => {
                write!(f, "unknown MRT record type {mrt_type}")
            }
            WarningKind::UnknownSubtype { mrt_type, subtype } => match mrt_type {
                16 | 17 => write!(f, "unknown BGP4MP record subtype {subtype}"),
                13 => write!(f, "unknown TABLE_DUMP_V2 record subtype {subtype}"),
                _ => write!(f, "unknown record subtype {subtype} (type {mrt_type})"),
            },
            WarningKind::DuplicatePathAttribute => write!(f, "Duplicate Path Attribute"),
            WarningKind::InvalidMpReachNlri => write!(f, "Invalid MP(UN)REACH NLRI"),
            WarningKind::Decode { context } => write!(f, "malformed record: {context}"),
            WarningKind::BadMarker => write!(f, "BGP message marker is not all-ones"),
            WarningKind::MissingPeerIndex { index } => {
                write!(f, "RIB entry references unknown peer index {index}")
            }
            WarningKind::TruncatedHeader { have } => {
                write!(f, "stream ends inside an MRT header ({have} of 12 bytes)")
            }
            WarningKind::TruncatedBody { declared, have } => {
                write!(f, "record body truncated ({have} of {declared} bytes)")
            }
            WarningKind::OversizedRecord { declared, cap } => {
                write!(f, "record declares {declared} bytes, cap is {cap}")
            }
        }
    }
}

/// One warning with stream context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrtWarning {
    /// Zero-based index of the record in the stream.
    pub record_index: u64,
    /// The record's MRT timestamp, when the header was readable.
    pub timestamp: Option<SimTime>,
    /// The peer the record came from, when identifiable.
    pub peer: Option<PeerKey>,
    /// The warning class.
    pub kind: WarningKind,
}

impl fmt::Display for MrtWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record #{}: {}", self.record_index, self.kind)?;
        if let Some(peer) = &self.peer {
            write!(f, " (peer {peer})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_warning_texts() {
        // These strings must stay aligned with bgpreader's output — the
        // paper quotes them verbatim.
        let w = WarningKind::UnknownSubtype {
            mrt_type: 16,
            subtype: 9,
        };
        assert_eq!(w.to_string(), "unknown BGP4MP record subtype 9");
        assert_eq!(
            WarningKind::DuplicatePathAttribute.to_string(),
            "Duplicate Path Attribute"
        );
        assert_eq!(
            WarningKind::InvalidMpReachNlri.to_string(),
            "Invalid MP(UN)REACH NLRI"
        );
    }

    #[test]
    fn addpath_signature_classification() {
        assert!(WarningKind::UnknownSubtype {
            mrt_type: 16,
            subtype: 9
        }
        .is_addpath_signature());
        assert!(WarningKind::UnknownSubtype {
            mrt_type: 17,
            subtype: 8
        }
        .is_addpath_signature());
        assert!(WarningKind::DuplicatePathAttribute.is_addpath_signature());
        assert!(WarningKind::InvalidMpReachNlri.is_addpath_signature());
        assert!(!WarningKind::UnknownSubtype {
            mrt_type: 16,
            subtype: 3
        }
        .is_addpath_signature());
        assert!(!WarningKind::BadMarker.is_addpath_signature());
        assert!(!WarningKind::UnknownType { mrt_type: 12 }.is_addpath_signature());
        // Framing-recovery warnings say the *stream* was damaged, not that
        // a peer speaks ADD-PATH — they must never feed peer removal.
        assert!(!WarningKind::TruncatedHeader { have: 6 }.is_addpath_signature());
        assert!(!WarningKind::TruncatedBody {
            declared: 64,
            have: 10
        }
        .is_addpath_signature());
        assert!(!WarningKind::OversizedRecord {
            declared: 1 << 30,
            cap: 1 << 25
        }
        .is_addpath_signature());
    }

    #[test]
    fn slugs_aggregate_by_class() {
        // Per-instance detail must not leak into the slug.
        assert_eq!(
            WarningKind::UnknownSubtype {
                mrt_type: 16,
                subtype: 9
            }
            .slug(),
            WarningKind::UnknownSubtype {
                mrt_type: 13,
                subtype: 7
            }
            .slug(),
        );
        let all = [
            WarningKind::UnknownType { mrt_type: 12 },
            WarningKind::UnknownSubtype {
                mrt_type: 16,
                subtype: 9,
            },
            WarningKind::DuplicatePathAttribute,
            WarningKind::InvalidMpReachNlri,
            WarningKind::Decode {
                context: "x".into(),
            },
            WarningKind::BadMarker,
            WarningKind::MissingPeerIndex { index: 3 },
            WarningKind::TruncatedHeader { have: 6 },
            WarningKind::TruncatedBody {
                declared: 64,
                have: 10,
            },
            WarningKind::OversizedRecord {
                declared: 1 << 30,
                cap: 1 << 25,
            },
        ];
        let slugs: std::collections::BTreeSet<&str> = all.iter().map(|k| k.slug()).collect();
        assert_eq!(slugs.len(), all.len(), "slugs are distinct per class");
        for slug in slugs {
            assert!(
                slug.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "slug {slug:?} is not snake_case"
            );
        }
    }

    #[test]
    fn decode_error_classification() {
        let dup = DecodeError::Invalid {
            context: "duplicate path attribute",
        };
        assert_eq!(
            WarningKind::from_decode(&dup),
            WarningKind::DuplicatePathAttribute
        );
        let mp = DecodeError::Invalid {
            context: "MP_REACH_NLRI AFI/SAFI",
        };
        assert_eq!(
            WarningKind::from_decode(&mp),
            WarningKind::InvalidMpReachNlri
        );
        let mp = DecodeError::Truncated {
            context: "MP_UNREACH_NLRI prefixes",
        };
        assert_eq!(
            WarningKind::from_decode(&mp),
            WarningKind::InvalidMpReachNlri
        );
        let marker = DecodeError::Invalid {
            context: "BGP marker",
        };
        assert_eq!(WarningKind::from_decode(&marker), WarningKind::BadMarker);
        let other = DecodeError::Truncated {
            context: "AS_PATH ASN",
        };
        assert!(matches!(
            WarningKind::from_decode(&other),
            WarningKind::Decode { .. }
        ));
    }

    #[test]
    fn warning_display_includes_context() {
        let w = MrtWarning {
            record_index: 7,
            timestamp: None,
            peer: Some(PeerKey::new(
                bgp_types::Asn(136557),
                "10.0.0.1".parse().unwrap(),
            )),
            kind: WarningKind::UnknownSubtype {
                mrt_type: 16,
                subtype: 9,
            },
        };
        let s = w.to_string();
        assert!(s.contains("record #7"));
        assert!(s.contains("subtype 9"));
        assert!(s.contains("AS136557"));
    }
}
