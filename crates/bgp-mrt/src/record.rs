//! Decoded MRT record types.

use crate::attrs::ParsedAttrs;
use bgp_types::{Asn, Family, PeerKey, Prefix, RouteAttrs, SimTime, UpdateRecord};
use std::net::{IpAddr, Ipv4Addr};

/// One peer entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The peer router's address.
    pub addr: IpAddr,
    /// The peer's AS.
    pub asn: Asn,
}

impl PeerEntry {
    /// The vantage-point identity of this entry.
    pub fn key(&self) -> PeerKey {
        PeerKey::new(self.asn, self.addr)
    }
}

/// TABLE_DUMP_V2 PEER_INDEX_TABLE: maps the `peer_index` of RIB entries to
/// peers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_bgp_id: u32,
    /// Optional view name (usually empty).
    pub view_name: String,
    /// Peer entries; `RibEntryRaw::peer_index` indexes this list.
    pub peers: Vec<PeerEntry>,
}

impl PeerIndexTable {
    /// Looks up the vantage-point identity for a RIB entry's peer index.
    pub fn peer_key(&self, index: u16) -> Option<PeerKey> {
        self.peers.get(index as usize).map(PeerEntry::key)
    }
}

/// One route within a TABLE_DUMP_V2 RIB record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntryRaw {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was received (Unix seconds).
    pub originated: u32,
    /// Decoded path attributes.
    pub attrs: ParsedAttrs,
}

/// A TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: one prefix
/// and the routes every peer reported for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntriesRecord {
    /// Record sequence number.
    pub sequence: u32,
    /// The prefix all entries describe.
    pub prefix: Prefix,
    /// Per-peer routes.
    pub entries: Vec<RibEntryRaw>,
}

impl RibEntriesRecord {
    /// The address family of the record's prefix.
    pub fn family(&self) -> Family {
        self.prefix.family()
    }
}

/// A decoded BGP UPDATE message body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMessage {
    /// IPv4 prefixes withdrawn in the fixed withdrawal field.
    pub withdrawn: Vec<Prefix>,
    /// Path attributes (IPv6 reach/unreach ride inside).
    pub attrs: ParsedAttrs,
    /// IPv4 prefixes announced in the trailing NLRI field.
    pub announced: Vec<Prefix>,
}

impl UpdateMessage {
    /// All announced prefixes: IPv4 NLRI plus MP_REACH_NLRI.
    pub fn all_announced(&self) -> Vec<Prefix> {
        let mut v = self.announced.clone();
        if let Some(mp) = &self.attrs.mp_reach {
            v.extend(mp.nlri.iter().copied());
        }
        v
    }

    /// All withdrawn prefixes: IPv4 withdrawals plus MP_UNREACH_NLRI.
    pub fn all_withdrawn(&self) -> Vec<Prefix> {
        let mut v = self.withdrawn.clone();
        if let Some(mp) = &self.attrs.mp_unreach {
            v.extend(mp.iter().copied());
        }
        v
    }
}

/// A BGP message carried in a BGP4MP record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)] // Update dominates by design; boxing costs more than it saves
pub enum BgpMessage {
    /// An UPDATE (type 2) — the only message type the analysis uses.
    Update(UpdateMessage),
    /// Any other message type (OPEN, KEEPALIVE, NOTIFICATION, …), carried
    /// opaquely.
    Other {
        /// The BGP message type byte.
        msg_type: u8,
    },
}

/// A decoded BGP4MP MESSAGE / MESSAGE_AS4 record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// Collector receive time.
    pub timestamp: SimTime,
    /// The peer's AS.
    pub peer_asn: Asn,
    /// The peer router's address.
    pub peer_addr: IpAddr,
    /// The collector's AS.
    pub local_asn: Asn,
    /// The collector's address.
    pub local_addr: IpAddr,
    /// The BGP message.
    pub message: BgpMessage,
}

impl Bgp4mpMessage {
    /// The vantage-point identity of the sending peer.
    pub fn peer_key(&self) -> PeerKey {
        PeerKey::new(self.peer_asn, self.peer_addr)
    }

    /// Converts an UPDATE into the analysis-level [`UpdateRecord`]
    /// (announced = v4 NLRI + MP_REACH, withdrawn = v4 + MP_UNREACH).
    /// Returns `None` for non-UPDATE messages.
    pub fn to_update_record(&self) -> Option<UpdateRecord> {
        let BgpMessage::Update(u) = &self.message else {
            return None;
        };
        Some(UpdateRecord {
            timestamp: self.timestamp,
            peer: self.peer_key(),
            announced: u.all_announced(),
            withdrawn: u.all_withdrawn(),
            attrs: RouteAttrs {
                path: u.attrs.as_path.clone(),
                origin: u.attrs.origin,
                communities: u.attrs.communities.clone(),
            },
        })
    }
}

/// Any successfully decoded MRT record.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MrtRecord {
    /// TABLE_DUMP_V2 PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 RIB record.
    RibEntries(RibEntriesRecord),
    /// Legacy TABLE_DUMP (v1) route record (2002-era archives).
    TableDumpV1(crate::table_dump_v1::TableDumpRecord),
    /// BGP4MP message record.
    Bgp4mp(Bgp4mpMessage),
}

/// Placeholder collector-side identity used when synthesizing records.
pub fn collector_local_addr() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(198, 51, 100, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_index_lookup() {
        let table = PeerIndexTable {
            collector_bgp_id: 1,
            view_name: String::new(),
            peers: vec![
                PeerEntry {
                    bgp_id: 10,
                    addr: "10.0.0.1".parse().unwrap(),
                    asn: Asn(3356),
                },
                PeerEntry {
                    bgp_id: 11,
                    addr: "10.0.0.2".parse().unwrap(),
                    asn: Asn(1299),
                },
            ],
        };
        assert_eq!(
            table.peer_key(1),
            Some(PeerKey::new(Asn(1299), "10.0.0.2".parse().unwrap()))
        );
        assert_eq!(table.peer_key(2), None);
    }

    #[test]
    fn update_message_merges_families() {
        let mut msg = UpdateMessage {
            announced: vec!["10.0.0.0/8".parse().unwrap()],
            withdrawn: vec!["11.0.0.0/8".parse().unwrap()],
            ..Default::default()
        };
        msg.attrs.mp_reach = Some(crate::attrs::MpReach {
            next_hop: None,
            nlri: vec!["2001:db8::/32".parse().unwrap()],
        });
        msg.attrs.mp_unreach = Some(vec!["2001:db8:1::/48".parse().unwrap()]);
        assert_eq!(msg.all_announced().len(), 2);
        assert_eq!(msg.all_withdrawn().len(), 2);
    }

    #[test]
    fn bgp4mp_to_update_record() {
        let m = Bgp4mpMessage {
            timestamp: SimTime::from_unix(1000),
            peer_asn: Asn(3356),
            peer_addr: "10.0.0.1".parse().unwrap(),
            local_asn: Asn(12654),
            local_addr: collector_local_addr(),
            message: BgpMessage::Update(UpdateMessage {
                announced: vec!["10.0.0.0/8".parse().unwrap()],
                attrs: ParsedAttrs::from_path("3356 64500".parse().unwrap()),
                ..Default::default()
            }),
        };
        let r = m.to_update_record().unwrap();
        assert_eq!(r.peer.asn, Asn(3356));
        assert_eq!(r.announced.len(), 1);
        assert_eq!(r.attrs.path.to_string(), "3356 64500");

        let other = Bgp4mpMessage {
            message: BgpMessage::Other { msg_type: 4 },
            ..m
        };
        assert!(other.to_update_record().is_none());
    }

    #[test]
    fn rib_record_family() {
        let r = RibEntriesRecord {
            sequence: 0,
            prefix: "2001:db8::/32".parse().unwrap(),
            entries: vec![],
        };
        assert_eq!(r.family(), Family::Ipv6);
    }
}
