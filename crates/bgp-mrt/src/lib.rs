//! Reader and writer for the MRT export format (RFC 6396) as used by the
//! RIPE RIS and RouteViews BGP collector archives.
//!
//! # Scope
//!
//! Like the archives the paper consumes, this crate supports exactly:
//!
//! * `TABLE_DUMP_V2` (type 13): `PEER_INDEX_TABLE`, `RIB_IPV4_UNICAST`,
//!   `RIB_IPV6_UNICAST`. The ADD-PATH subtypes (RFC 8050) are *recognized*
//!   but not decoded — the reader emits a [`MrtWarning`] and skips them,
//!   matching the behaviour (and the warning text) the paper keys on to
//!   identify broken peers (Appendix A8.3).
//! * legacy `TABLE_DUMP` (type 12): the 2002-era format the paper's §3
//!   reproduction reads (one record per route, 2-byte ASNs).
//! * `BGP4MP` / `BGP4MP_ET` (types 16/17): `MESSAGE` and `MESSAGE_AS4`
//!   carrying BGP UPDATE messages, including `MP_REACH_NLRI` /
//!   `MP_UNREACH_NLRI` for IPv6.
//!
//! Everything else is intentionally absent and produces a warning, never a
//! panic: the reader must survive arbitrary bytes (fault-injection tests
//! feed it truncated and bit-flipped records).
//!
//! # Tolerant parsing
//!
//! [`reader::MrtReader`] is *strict per record* but *tolerant per stream*:
//! a malformed record yields an [`MrtWarning`] and the reader resynchronizes
//! at the next record boundary using the MRT length field. This mirrors
//! `bgpreader`, whose warnings ("unknown BGP4MP record subtype 9",
//! "Duplicate Path Attribute", "Invalid MP(UN)REACH NLRI") are the paper's
//! signal for ADD-PATH-incompatible peers.
//!
//! Stream-level *framing* failures (a truncated header or body, a length
//! field past the sanity cap) are fatal by default, but [`RecoveryPolicy`]
//! lets callers opt into scanning forward to the next plausible record
//! boundary instead; each survived failure becomes a typed warning and the
//! damage is accounted in [`IngestStats`].
//!
//! # Writing
//!
//! The writer half ([`writer`]) produces byte-identical output for identical
//! input and supports deliberate *corruption modes* so the simulator can
//! inject the artifact classes the paper sanitizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod error;
pub mod nlri;
pub mod reader;
pub mod record;
pub mod table_dump_v1;
pub mod warnings;
pub mod wire;
pub mod writer;

pub use error::MrtError;
pub use reader::{IngestStats, MrtReader, RecoveryPolicy, RibDumpReader, UpdatesReader};
pub use record::{
    Bgp4mpMessage, BgpMessage, MrtRecord, PeerEntry, PeerIndexTable, RibEntriesRecord, RibEntryRaw,
    UpdateMessage,
};
pub use warnings::{MrtWarning, WarningKind};
pub use writer::{CorruptionMode, RibDumpWriter, UpdateDumpWriter};

/// MRT record type: TABLE_DUMP (v1, 2002-era archives).
pub const TYPE_TABLE_DUMP: u16 = 12;
/// MRT record type: TABLE_DUMP_V2.
pub const TYPE_TABLE_DUMP_V2: u16 = 13;
/// MRT record type: BGP4MP.
pub const TYPE_BGP4MP: u16 = 16;
/// MRT record type: BGP4MP_ET (extended timestamp).
pub const TYPE_BGP4MP_ET: u16 = 17;

/// TABLE_DUMP_V2 subtype: PEER_INDEX_TABLE.
pub const SUBTYPE_PEER_INDEX_TABLE: u16 = 1;
/// TABLE_DUMP_V2 subtype: RIB_IPV4_UNICAST.
pub const SUBTYPE_RIB_IPV4_UNICAST: u16 = 2;
/// TABLE_DUMP_V2 subtype: RIB_IPV6_UNICAST.
pub const SUBTYPE_RIB_IPV6_UNICAST: u16 = 4;
/// TABLE_DUMP_V2 subtype: RIB_IPV4_UNICAST_ADDPATH (RFC 8050), flagged only.
pub const SUBTYPE_RIB_IPV4_UNICAST_ADDPATH: u16 = 8;
/// TABLE_DUMP_V2 subtype: RIB_IPV6_UNICAST_ADDPATH (RFC 8050), flagged only.
pub const SUBTYPE_RIB_IPV6_UNICAST_ADDPATH: u16 = 10;

/// BGP4MP subtype: MESSAGE (2-byte ASNs).
pub const SUBTYPE_BGP4MP_MESSAGE: u16 = 1;
/// BGP4MP subtype: MESSAGE_AS4 (4-byte ASNs).
pub const SUBTYPE_BGP4MP_MESSAGE_AS4: u16 = 4;
/// BGP4MP subtype: MESSAGE_ADDPATH (RFC 8050), flagged only.
pub const SUBTYPE_BGP4MP_MESSAGE_ADDPATH: u16 = 8;
/// BGP4MP subtype: MESSAGE_AS4_ADDPATH (RFC 8050) — the "unknown BGP4MP
/// record subtype 9" of the paper's Appendix A8.3 — flagged only.
pub const SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH: u16 = 9;
