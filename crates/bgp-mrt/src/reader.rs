//! Tolerant, streaming MRT reader.

use crate::attrs::{self, MpReachForm};
use crate::error::{DecodeError, MrtError};
use crate::record::{
    Bgp4mpMessage, BgpMessage, MrtRecord, PeerEntry, PeerIndexTable, RibEntriesRecord, RibEntryRaw,
    UpdateMessage,
};
use crate::table_dump_v1::{decode_table_dump, SUBTYPE_AFI_IPV4, SUBTYPE_AFI_IPV6};
use crate::warnings::{MrtWarning, WarningKind};
use crate::wire::{self, Cursor};
use crate::{
    SUBTYPE_BGP4MP_MESSAGE, SUBTYPE_BGP4MP_MESSAGE_ADDPATH, SUBTYPE_BGP4MP_MESSAGE_AS4,
    SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH, SUBTYPE_PEER_INDEX_TABLE, SUBTYPE_RIB_IPV4_UNICAST,
    SUBTYPE_RIB_IPV4_UNICAST_ADDPATH, SUBTYPE_RIB_IPV6_UNICAST, SUBTYPE_RIB_IPV6_UNICAST_ADDPATH,
    TYPE_BGP4MP, TYPE_BGP4MP_ET, TYPE_TABLE_DUMP, TYPE_TABLE_DUMP_V2,
};
use bgp_types::{Asn, Family, PeerKey, RibEntry, RouteAttrs, SimTime, UpdateRecord};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Default cap on a single record body; protects against corrupt length
/// fields demanding absurd allocations.
pub const DEFAULT_RECORD_CAP: u32 = 32 * 1024 * 1024;

/// Default skip budget for [`RecoveryPolicy::RecoverWithCap`].
pub const DEFAULT_SKIP_CAP: u64 = 4 * 1024 * 1024;

/// How the reader responds to stream-level framing failures — a truncated
/// header or body, or a length field past the record-size cap.
///
/// Per-record *decode* failures (bad attributes, unknown subtypes, marker
/// corruption) are warnings under every policy; the policy only governs
/// failures that today abort the whole stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Framing failures abort the read with an [`MrtError`] (the historical
    /// behaviour, and still the default).
    #[default]
    Strict,
    /// Skip to the next plausible record boundary, emitting a typed warning
    /// per failure and counting the damage in [`IngestStats`].
    Recover,
    /// Recover, but abort with [`MrtError::SkipBudgetExhausted`] once more
    /// than `max_skipped_bytes` have been discarded in total.
    RecoverWithCap {
        /// Total skipped-byte budget for the stream.
        max_skipped_bytes: u64,
    },
}

impl RecoveryPolicy {
    /// [`RecoveryPolicy::RecoverWithCap`] with the default
    /// [`DEFAULT_SKIP_CAP`] budget.
    pub fn recover_with_default_cap() -> RecoveryPolicy {
        RecoveryPolicy::RecoverWithCap {
            max_skipped_bytes: DEFAULT_SKIP_CAP,
        }
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(RecoveryPolicy::Strict),
            "recover" => Ok(RecoveryPolicy::Recover),
            "recover-with-cap" => Ok(RecoveryPolicy::recover_with_default_cap()),
            other => {
                if let Some(budget) = other.strip_prefix("recover-with-cap=") {
                    let max_skipped_bytes: u64 = budget.parse().map_err(|_| {
                        format!("bad skip budget {budget:?} in ingest policy (expected bytes as a non-negative integer)")
                    })?;
                    return Ok(RecoveryPolicy::RecoverWithCap { max_skipped_bytes });
                }
                Err(format!(
                    "unknown ingest policy {other:?} (expected strict, recover, recover-with-cap, or recover-with-cap=<bytes>)"
                ))
            }
        }
    }
}

/// Damage accounting for one recovery-mode read: how many framing failures
/// were survived and how many bytes were discarded doing so.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Framing failures recovered from — each one would have aborted a
    /// strict read.
    pub recovered_records: u64,
    /// Bytes discarded while resynchronizing (header/body fragments plus
    /// everything slid past looking for the next record boundary).
    pub skipped_bytes: u64,
}

impl IngestStats {
    /// Folds another read's stats into this one (multi-file ingestion).
    pub fn absorb(&mut self, other: IngestStats) {
        self.recovered_records += other.recovered_records;
        self.skipped_bytes += other.skipped_bytes;
    }

    /// True when nothing had to be recovered.
    pub fn is_clean(&self) -> bool {
        self.recovered_records == 0 && self.skipped_bytes == 0
    }
}

/// A framed-but-undecoded MRT record.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Header timestamp (Unix seconds).
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// The record body.
    pub body: Bytes,
}

/// Output of one reader step: a decoded record or a warning for a record
/// that was skipped.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ReadItem {
    /// A successfully decoded record.
    Record(MrtRecord),
    /// A record that could not be decoded and was skipped.
    Warning(MrtWarning),
}

/// One framing step in recovery mode: a record, a survived failure, or the
/// end of the stream.
enum Frame {
    Record(RawRecord),
    Recovered(WarningKind),
    Eof,
}

/// Streaming MRT reader: strict per record, tolerant per stream.
#[derive(Debug)]
pub struct MrtReader<R> {
    inner: R,
    record_index: u64,
    cap: u32,
    policy: RecoveryPolicy,
    stats: IngestStats,
    /// A header found by resynchronization, to be consumed before reading
    /// more bytes from `inner`.
    pending: Option<[u8; 12]>,
    /// Recovery mode reached the (possibly damaged) end of the stream.
    done: bool,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        Self::with_cap(inner, DEFAULT_RECORD_CAP)
    }

    /// Wraps a byte source with a custom record-size cap.
    pub fn with_cap(inner: R, cap: u32) -> Self {
        MrtReader {
            inner,
            record_index: 0,
            cap,
            policy: RecoveryPolicy::Strict,
            stats: IngestStats::default(),
            pending: None,
            done: false,
        }
    }

    /// Wraps a byte source with a framing-failure policy (default cap).
    pub fn with_policy(inner: R, policy: RecoveryPolicy) -> Self {
        Self::with_policy_and_cap(inner, policy, DEFAULT_RECORD_CAP)
    }

    /// Wraps a byte source with a framing-failure policy and a custom
    /// record-size cap.
    pub fn with_policy_and_cap(inner: R, policy: RecoveryPolicy, cap: u32) -> Self {
        let mut reader = Self::with_cap(inner, cap);
        reader.policy = policy;
        reader
    }

    /// Sets the framing-failure policy in place.
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Index of the next record to be read.
    pub fn record_index(&self) -> u64 {
        self.record_index
    }

    /// Damage accounting so far (all zeroes outside recovery mode).
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Frames the next record without decoding its body.
    ///
    /// Returns `Ok(None)` at a clean end of stream. This is the raw framing
    /// API and is *always* strict — framing recovery is a feature of
    /// [`MrtReader::next`] and the `read_all` drivers, selected by
    /// [`RecoveryPolicy`].
    pub fn next_raw(&mut self) -> Result<Option<RawRecord>, MrtError> {
        let mut header = [0u8; 12];
        let filled = self.fill(&mut header)?;
        if filled == 0 {
            return Ok(None);
        }
        if filled < header.len() {
            return Err(MrtError::TruncatedHeader { have: filled });
        }
        let (timestamp, mrt_type, subtype, length) = wire::parse_header(&header);
        if length > self.cap {
            return Err(MrtError::RecordTooLarge {
                declared: length,
                cap: self.cap,
            });
        }
        let mut body = vec![0u8; length as usize];
        self.inner.read_exact(&mut body).map_err(MrtError::Io)?;
        self.record_index += 1;
        Ok(Some(RawRecord {
            timestamp,
            mrt_type,
            subtype,
            body: Bytes::from(body),
        }))
    }

    /// Reads into `buf` until it is full or the stream ends; returns how
    /// many bytes were read. Unlike `read_exact`, a short stream is not an
    /// error — recovery mode needs to know exactly how much arrived.
    fn fill(&mut self, buf: &mut [u8]) -> Result<usize, MrtError> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.inner.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        Ok(filled)
    }

    /// Books one survived framing failure, enforcing the skip budget when
    /// the policy has one.
    fn recovered(&mut self, skipped: u64, kind: WarningKind) -> Result<Frame, MrtError> {
        self.stats.recovered_records += 1;
        self.stats.skipped_bytes += skipped;
        if let RecoveryPolicy::RecoverWithCap { max_skipped_bytes } = self.policy {
            if self.stats.skipped_bytes > max_skipped_bytes {
                return Err(MrtError::SkipBudgetExhausted {
                    skipped: self.stats.skipped_bytes,
                    cap: max_skipped_bytes,
                });
            }
        }
        Ok(Frame::Recovered(kind))
    }

    /// Slides a 12-byte window one byte at a time until it holds a
    /// plausible MRT header (see [`wire::plausible_header`]), which is then
    /// stashed in `self.pending` for the next framing step. Returns the
    /// number of bytes discarded. At end of stream the leftover window
    /// bytes count as discarded and the reader is marked done.
    fn resync(&mut self, window: &mut [u8; 12]) -> Result<u64, MrtError> {
        let mut skipped: u64 = 0;
        loop {
            let mut next = [0u8; 1];
            let n = self.inner.read(&mut next)?;
            window.copy_within(1.., 0);
            skipped += 1;
            if n == 0 {
                // The 11 bytes left in the window can no longer form a
                // full header.
                self.done = true;
                return Ok(skipped + 11);
            }
            window[11] = next[0];
            if wire::plausible_header(window, self.cap) {
                self.pending = Some(*window);
                return Ok(skipped);
            }
            // Keep a capped scan bounded even before the warning is booked.
            if let RecoveryPolicy::RecoverWithCap { max_skipped_bytes } = self.policy {
                if self.stats.skipped_bytes + skipped > max_skipped_bytes {
                    return Err(MrtError::SkipBudgetExhausted {
                        skipped: self.stats.skipped_bytes + skipped,
                        cap: max_skipped_bytes,
                    });
                }
            }
        }
    }

    /// One recovery-mode framing step: the next record, a survived framing
    /// failure, or the end of the (possibly damaged) stream.
    fn next_frame(&mut self) -> Result<Frame, MrtError> {
        if self.done {
            return Ok(Frame::Eof);
        }
        let mut header = [0u8; 12];
        match self.pending.take() {
            Some(h) => header = h,
            None => {
                let have = self.fill(&mut header)?;
                if have == 0 {
                    self.done = true;
                    return Ok(Frame::Eof);
                }
                if have < header.len() {
                    self.done = true;
                    return self.recovered(
                        have as u64,
                        WarningKind::TruncatedHeader { have: have as u8 },
                    );
                }
            }
        }
        let (timestamp, mrt_type, subtype, length) = wire::parse_header(&header);
        if length > self.cap {
            let skipped = self.resync(&mut header)?;
            return self.recovered(
                skipped,
                WarningKind::OversizedRecord {
                    declared: length,
                    cap: self.cap,
                },
            );
        }
        let mut body = vec![0u8; length as usize];
        let have = self.fill(&mut body)?;
        if have < body.len() {
            self.done = true;
            return self.recovered(
                12 + have as u64,
                WarningKind::TruncatedBody {
                    declared: length,
                    have: have as u32,
                },
            );
        }
        self.record_index += 1;
        Ok(Frame::Record(RawRecord {
            timestamp,
            mrt_type,
            subtype,
            body: Bytes::from(body),
        }))
    }

    /// Decodes the next record, converting per-record failures into
    /// warnings. Returns `Ok(None)` at a clean end of stream; `Err` only
    /// for stream-fatal conditions — under [`RecoveryPolicy::Strict`] that
    /// includes framing failures, under the recovery policies those become
    /// warnings too and only real I/O errors (or an exhausted skip budget)
    /// remain fatal.
    ///
    /// (Deliberately named like `Iterator::next`; a fallible pull API
    /// cannot implement `Iterator` without hiding stream-fatal errors.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ReadItem>, MrtError> {
        if self.policy == RecoveryPolicy::Strict {
            let Some(raw) = self.next_raw()? else {
                return Ok(None);
            };
            let index = self.record_index - 1;
            return Ok(Some(decode_record(&raw, index)));
        }
        match self.next_frame()? {
            Frame::Eof => Ok(None),
            Frame::Record(raw) => {
                let index = self.record_index - 1;
                Ok(Some(decode_record(&raw, index)))
            }
            Frame::Recovered(kind) => Ok(Some(ReadItem::Warning(MrtWarning {
                // The record never framed, so it never took an index; the
                // warning carries the index the next record will get.
                record_index: self.record_index,
                timestamp: None,
                peer: None,
                kind,
            }))),
        }
    }

    /// Drains the stream into (records, warnings).
    pub fn read_all(mut self) -> Result<(Vec<MrtRecord>, Vec<MrtWarning>), MrtError> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        while let Some(item) = self.next()? {
            match item {
                ReadItem::Record(r) => records.push(r),
                ReadItem::Warning(w) => warnings.push(w),
            }
        }
        Ok((records, warnings))
    }
}

/// Decodes a framed record, mapping failures to warnings.
pub fn decode_record(raw: &RawRecord, index: u64) -> ReadItem {
    let ts = SimTime::from_unix(raw.timestamp as u64);
    let warn = |kind: WarningKind, peer: Option<PeerKey>| {
        ReadItem::Warning(MrtWarning {
            record_index: index,
            timestamp: Some(ts),
            peer,
            kind,
        })
    };
    match (raw.mrt_type, raw.subtype) {
        (TYPE_TABLE_DUMP, sub @ (SUBTYPE_AFI_IPV4 | SUBTYPE_AFI_IPV6)) => {
            let family = if sub == SUBTYPE_AFI_IPV4 {
                Family::Ipv4
            } else {
                Family::Ipv6
            };
            match decode_table_dump(&mut Cursor::new(raw.body.clone()), family) {
                Ok(r) => ReadItem::Record(MrtRecord::TableDumpV1(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP, sub) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP,
                subtype: sub,
            },
            None,
        ),
        (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
            match decode_peer_index_table(&mut Cursor::new(raw.body.clone())) {
                Ok(t) => ReadItem::Record(MrtRecord::PeerIndexTable(t)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
            match decode_rib(&mut Cursor::new(raw.body.clone()), Family::Ipv4) {
                Ok(r) => ReadItem::Record(MrtRecord::RibEntries(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
            match decode_rib(&mut Cursor::new(raw.body.clone()), Family::Ipv6) {
                Ok(r) => ReadItem::Record(MrtRecord::RibEntries(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (
            TYPE_TABLE_DUMP_V2,
            sub @ (SUBTYPE_RIB_IPV4_UNICAST_ADDPATH | SUBTYPE_RIB_IPV6_UNICAST_ADDPATH),
        ) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP_V2,
                subtype: sub,
            },
            None,
        ),
        (TYPE_TABLE_DUMP_V2, sub) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP_V2,
                subtype: sub,
            },
            None,
        ),
        (t @ (TYPE_BGP4MP | TYPE_BGP4MP_ET), sub) => {
            let mut cur = Cursor::new(raw.body.clone());
            if t == TYPE_BGP4MP_ET {
                if let Err(e) = cur.skip(4, "BGP4MP_ET microseconds") {
                    return warn(WarningKind::from_decode(&e), None);
                }
            }
            match sub {
                SUBTYPE_BGP4MP_MESSAGE | SUBTYPE_BGP4MP_MESSAGE_AS4 => {
                    let as4 = sub == SUBTYPE_BGP4MP_MESSAGE_AS4;
                    match decode_bgp4mp_message(&mut cur, as4, ts) {
                        Ok(m) => ReadItem::Record(MrtRecord::Bgp4mp(m)),
                        Err((e, peer)) => warn(WarningKind::from_decode(&e), peer),
                    }
                }
                SUBTYPE_BGP4MP_MESSAGE_ADDPATH | SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH | 10 | 11 => {
                    // ADD-PATH records: we do not decode them, but the peer
                    // fields sit before the NLRI, so best-effort attribution
                    // is possible — the paper attributes these warnings to
                    // specific peer ASNs.
                    let as4 = sub == SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH || sub == 11;
                    let peer = decode_bgp4mp_peer(&mut cur, as4).ok().map(|(p, _)| p);
                    warn(
                        WarningKind::UnknownSubtype {
                            mrt_type: t,
                            subtype: sub,
                        },
                        peer,
                    )
                }
                _ => warn(
                    WarningKind::UnknownSubtype {
                        mrt_type: t,
                        subtype: sub,
                    },
                    None,
                ),
            }
        }
        (t, _) => warn(WarningKind::UnknownType { mrt_type: t }, None),
    }
}

fn decode_peer_index_table(cur: &mut Cursor) -> Result<PeerIndexTable, DecodeError> {
    let collector_bgp_id = cur.u32("collector BGP id")?;
    let name_len = cur.u16("view name length")? as usize;
    let name_bytes = cur.take(name_len, "view name")?;
    let view_name = String::from_utf8_lossy(&name_bytes).into_owned();
    let count = cur.u16("peer count")? as usize;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        let peer_type = cur.u8("peer type")?;
        let bgp_id = cur.u32("peer BGP id")?;
        let addr = if peer_type & 0x01 != 0 {
            IpAddr::V6(Ipv6Addr::from(cur.u128("peer IPv6 address")?))
        } else {
            IpAddr::V4(Ipv4Addr::from(cur.u32("peer IPv4 address")?))
        };
        let asn = if peer_type & 0x02 != 0 {
            Asn(cur.u32("peer ASN (4 byte)")?)
        } else {
            Asn(cur.u16("peer ASN (2 byte)")? as u32)
        };
        peers.push(PeerEntry { bgp_id, addr, asn });
    }
    if !cur.is_empty() {
        return Err(DecodeError::Invalid {
            context: "trailing bytes after PEER_INDEX_TABLE",
        });
    }
    Ok(PeerIndexTable {
        collector_bgp_id,
        view_name,
        peers,
    })
}

fn decode_rib(cur: &mut Cursor, family: Family) -> Result<RibEntriesRecord, DecodeError> {
    let sequence = cur.u32("RIB sequence number")?;
    let prefix = crate::nlri::decode_prefix(cur, family)?;
    let count = cur.u16("RIB entry count")? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let peer_index = cur.u16("RIB entry peer index")?;
        let originated = cur.u32("RIB entry originated time")?;
        let attr_len = cur.u16("RIB entry attribute length")? as usize;
        let mut body = cur.sub(attr_len, "RIB entry attributes")?;
        let attrs = attrs::decode_attrs(&mut body, 4, MpReachForm::Abbreviated)?;
        entries.push(RibEntryRaw {
            peer_index,
            originated,
            attrs,
        });
    }
    if !cur.is_empty() {
        return Err(DecodeError::Invalid {
            context: "trailing bytes after RIB record",
        });
    }
    Ok(RibEntriesRecord {
        sequence,
        prefix,
        entries,
    })
}

type PeerContext = (PeerKey, (Asn, IpAddr));

/// Decodes the BGP4MP peer/local preamble; returns (peer, (local_asn,
/// local_addr)).
fn decode_bgp4mp_peer(cur: &mut Cursor, as4: bool) -> Result<PeerContext, DecodeError> {
    let (peer_asn, local_asn) = if as4 {
        (Asn(cur.u32("peer ASN")?), Asn(cur.u32("local ASN")?))
    } else {
        (
            Asn(cur.u16("peer ASN")? as u32),
            Asn(cur.u16("local ASN")? as u32),
        )
    };
    cur.skip(2, "interface index")?;
    let afi = cur.u16("address family")?;
    let (peer_addr, local_addr) = match afi {
        1 => (
            IpAddr::V4(Ipv4Addr::from(cur.u32("peer address")?)),
            IpAddr::V4(Ipv4Addr::from(cur.u32("local address")?)),
        ),
        2 => (
            IpAddr::V6(Ipv6Addr::from(cur.u128("peer address")?)),
            IpAddr::V6(Ipv6Addr::from(cur.u128("local address")?)),
        ),
        _ => {
            return Err(DecodeError::Invalid {
                context: "BGP4MP address family",
            })
        }
    };
    Ok((PeerKey::new(peer_asn, peer_addr), (local_asn, local_addr)))
}

#[allow(clippy::result_large_err)]
fn decode_bgp4mp_message(
    cur: &mut Cursor,
    as4: bool,
    ts: SimTime,
) -> Result<Bgp4mpMessage, (DecodeError, Option<PeerKey>)> {
    let (peer, (local_asn, local_addr)) = decode_bgp4mp_peer(cur, as4).map_err(|e| (e, None))?;
    let fail = |e: DecodeError| (e, Some(peer));

    // BGP message header: 16-byte marker, 2-byte length, 1-byte type.
    let marker = cur.take(16, "BGP marker").map_err(fail)?;
    if marker.iter().any(|&b| b != 0xFF) {
        return Err(fail(DecodeError::Invalid {
            context: "BGP marker",
        }));
    }
    let msg_len = cur.u16("BGP message length").map_err(fail)? as usize;
    let msg_type = cur.u8("BGP message type").map_err(fail)?;
    if msg_len < 19 {
        return Err(fail(DecodeError::Invalid {
            context: "BGP message length",
        }));
    }
    let mut body = cur.sub(msg_len - 19, "BGP message body").map_err(fail)?;
    if !cur.is_empty() {
        return Err(fail(DecodeError::Invalid {
            context: "trailing bytes after BGP message",
        }));
    }
    let message = if msg_type == 2 {
        let withdrawn_len = body.u16("withdrawn routes length").map_err(fail)? as usize;
        let mut wcur = body.sub(withdrawn_len, "withdrawn routes").map_err(fail)?;
        let withdrawn = crate::nlri::decode_prefix_run(&mut wcur, Family::Ipv4).map_err(fail)?;
        let attr_len = body.u16("path attribute length").map_err(fail)? as usize;
        let mut acur = body.sub(attr_len, "path attributes").map_err(fail)?;
        let attrs = attrs::decode_attrs(&mut acur, if as4 { 4 } else { 2 }, MpReachForm::Full)
            .map_err(fail)?;
        let announced = crate::nlri::decode_prefix_run(&mut body, Family::Ipv4).map_err(fail)?;
        BgpMessage::Update(UpdateMessage {
            withdrawn,
            attrs,
            announced,
        })
    } else {
        BgpMessage::Other { msg_type }
    };
    Ok(Bgp4mpMessage {
        timestamp: ts,
        peer_asn: peer.asn,
        peer_addr: peer.addr,
        local_asn,
        local_addr,
        message,
    })
}

/// A fully read RIB dump (TABLE_DUMP_V2 or legacy TABLE_DUMP).
#[derive(Debug, Clone, Default)]
pub struct RibDump {
    /// The peer index table (empty if the dump had none).
    pub table: PeerIndexTable,
    /// All TABLE_DUMP_V2 RIB records in file order.
    pub routes: Vec<RibEntriesRecord>,
    /// Legacy TABLE_DUMP (v1) route records in file order.
    pub v1_routes: Vec<crate::table_dump_v1::TableDumpRecord>,
    /// Warnings collected while reading.
    pub warnings: Vec<MrtWarning>,
    /// Framing-recovery accounting (all zeroes on strict reads).
    pub ingest: IngestStats,
}

impl RibDump {
    /// Iterates `(peer, prefix, attrs-as-RouteAttrs)` over every entry,
    /// resolving peer indexes. Entries with dangling indexes are appended to
    /// a fresh warning list returned alongside.
    pub fn entries(&self) -> (Vec<(PeerKey, RibEntry)>, Vec<MrtWarning>) {
        let mut out = Vec::new();
        let mut warnings = Vec::new();
        for rec in &self.v1_routes {
            out.push((
                rec.peer,
                RibEntry {
                    prefix: rec.prefix,
                    attrs: RouteAttrs {
                        path: rec.attrs.as_path.clone(),
                        origin: rec.attrs.origin,
                        communities: rec.attrs.communities.clone(),
                    },
                },
            ));
        }
        for (i, rec) in self.routes.iter().enumerate() {
            for e in &rec.entries {
                match self.table.peer_key(e.peer_index) {
                    Some(peer) => {
                        let attrs = RouteAttrs {
                            path: e.attrs.as_path.clone(),
                            origin: e.attrs.origin,
                            communities: e.attrs.communities.clone(),
                        };
                        out.push((
                            peer,
                            RibEntry {
                                prefix: rec.prefix,
                                attrs,
                            },
                        ));
                    }
                    None => warnings.push(MrtWarning {
                        record_index: i as u64,
                        timestamp: None,
                        peer: None,
                        kind: WarningKind::MissingPeerIndex {
                            index: e.peer_index,
                        },
                    }),
                }
            }
        }
        (out, warnings)
    }
}

/// Reads an entire TABLE_DUMP_V2 RIB dump from a byte source.
#[derive(Debug)]
pub struct RibDumpReader;

impl RibDumpReader {
    /// Reads until end of stream, collecting the peer table, routes, and
    /// warnings. Strict: framing failures abort the read.
    pub fn read_all<R: Read>(reader: R) -> Result<RibDump, MrtError> {
        Self::read_all_with_policy(reader, RecoveryPolicy::Strict)
    }

    /// [`RibDumpReader::read_all`] under an explicit framing-failure
    /// policy; recovery damage is reported in the dump's `ingest` field.
    pub fn read_all_with_policy<R: Read>(
        reader: R,
        policy: RecoveryPolicy,
    ) -> Result<RibDump, MrtError> {
        let mut mrt = MrtReader::with_policy(reader, policy);
        let mut dump = RibDump::default();
        while let Some(item) = mrt.next()? {
            match item {
                ReadItem::Record(MrtRecord::PeerIndexTable(t)) => dump.table = t,
                ReadItem::Record(MrtRecord::RibEntries(r)) => dump.routes.push(r),
                ReadItem::Record(MrtRecord::TableDumpV1(r)) => dump.v1_routes.push(r),
                ReadItem::Record(MrtRecord::Bgp4mp(_)) => {
                    dump.warnings.push(MrtWarning {
                        record_index: mrt.record_index() - 1,
                        timestamp: None,
                        peer: None,
                        kind: WarningKind::Decode {
                            context: "BGP4MP record inside a RIB dump".into(),
                        },
                    });
                }
                ReadItem::Warning(w) => dump.warnings.push(w),
            }
        }
        dump.ingest = mrt.stats();
        Ok(dump)
    }
}

/// Reads an entire BGP4MP updates file from a byte source.
#[derive(Debug)]
pub struct UpdatesReader;

impl UpdatesReader {
    /// Reads until end of stream, converting UPDATE messages into
    /// [`UpdateRecord`]s. Non-UPDATE BGP messages are ignored. Strict:
    /// framing failures abort the read.
    pub fn read_all<R: Read>(reader: R) -> Result<(Vec<UpdateRecord>, Vec<MrtWarning>), MrtError> {
        let (updates, warnings, _) = Self::read_all_with_policy(reader, RecoveryPolicy::Strict)?;
        Ok((updates, warnings))
    }

    /// [`UpdatesReader::read_all`] under an explicit framing-failure
    /// policy; recovery damage is returned as the third element.
    pub fn read_all_with_policy<R: Read>(
        reader: R,
        policy: RecoveryPolicy,
    ) -> Result<(Vec<UpdateRecord>, Vec<MrtWarning>, IngestStats), MrtError> {
        let mut mrt = MrtReader::with_policy(reader, policy);
        let mut updates = Vec::new();
        let mut warnings = Vec::new();
        while let Some(item) = mrt.next()? {
            match item {
                ReadItem::Record(MrtRecord::Bgp4mp(m)) => {
                    if let Some(u) = m.to_update_record() {
                        updates.push(u);
                    }
                }
                ReadItem::Record(_) => warnings.push(MrtWarning {
                    record_index: mrt.record_index() - 1,
                    timestamp: None,
                    peer: None,
                    kind: WarningKind::Decode {
                        context: "RIB record inside an updates file".into(),
                    },
                }),
                ReadItem::Warning(w) => warnings.push(w),
            }
        }
        Ok((updates, warnings, mrt.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::UpdateDumpWriter;
    use std::str::FromStr;

    fn sample_updates(n: usize) -> Vec<u8> {
        let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
        for i in 0..n {
            let rec = UpdateRecord::announce(
                SimTime::from_ymd_hms(2024, 10, 15, 8, 0, (i % 60) as u8),
                PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap()),
                vec![format!("10.{}.0.0/16", i + 1).parse().unwrap()],
                RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
            );
            w.write_update(&rec).unwrap();
        }
        w.into_inner()
    }

    fn read_recovering(bytes: &[u8]) -> (usize, Vec<MrtWarning>, IngestStats) {
        let (updates, warnings, stats) =
            UpdatesReader::read_all_with_policy(bytes, RecoveryPolicy::Recover)
                .expect("recovery reads of in-memory bytes never fail");
        (updates.len(), warnings, stats)
    }

    #[test]
    fn recovery_policy_parses() {
        assert_eq!(
            RecoveryPolicy::from_str("strict").unwrap(),
            RecoveryPolicy::Strict
        );
        assert_eq!(
            RecoveryPolicy::from_str("recover").unwrap(),
            RecoveryPolicy::Recover
        );
        assert_eq!(
            RecoveryPolicy::from_str("recover-with-cap").unwrap(),
            RecoveryPolicy::RecoverWithCap {
                max_skipped_bytes: DEFAULT_SKIP_CAP
            }
        );
        assert!(RecoveryPolicy::from_str("lenient").is_err());
    }

    #[test]
    fn recovery_policy_parses_explicit_cap() {
        assert_eq!(
            RecoveryPolicy::from_str("recover-with-cap=65536").unwrap(),
            RecoveryPolicy::RecoverWithCap {
                max_skipped_bytes: 65536
            }
        );
        assert_eq!(
            RecoveryPolicy::from_str("recover-with-cap=0").unwrap(),
            RecoveryPolicy::RecoverWithCap {
                max_skipped_bytes: 0
            }
        );
        // The bare spelling keeps the default budget.
        assert_eq!(
            RecoveryPolicy::from_str("recover-with-cap").unwrap(),
            RecoveryPolicy::recover_with_default_cap()
        );
        assert!(RecoveryPolicy::from_str("recover-with-cap=").is_err());
        assert!(RecoveryPolicy::from_str("recover-with-cap=4MiB").is_err());
        assert!(RecoveryPolicy::from_str("recover-with-cap=-1").is_err());
    }

    #[test]
    fn strict_reads_stay_clean_and_strict() {
        let bytes = sample_updates(3);
        let (updates, warnings) = UpdatesReader::read_all(&bytes[..]).unwrap();
        assert_eq!(updates.len(), 3);
        assert!(warnings.is_empty());

        let mut truncated = sample_updates(2);
        truncated.extend_from_slice(&[0u8; 6]);
        assert!(matches!(
            UpdatesReader::read_all(&truncated[..]),
            Err(MrtError::TruncatedHeader { have: 6 })
        ));
    }

    #[test]
    fn recover_survives_truncated_header() {
        let mut bytes = sample_updates(2);
        bytes.extend_from_slice(&[0u8; 6]);
        let (n, warnings, stats) = read_recovering(&bytes);
        assert_eq!(n, 2);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].kind, WarningKind::TruncatedHeader { have: 6 });
        assert_eq!(warnings[0].timestamp, None);
        assert_eq!(
            stats,
            IngestStats {
                recovered_records: 1,
                skipped_bytes: 6
            }
        );
    }

    #[test]
    fn recover_survives_truncated_body() {
        let whole = sample_updates(3);
        let two = sample_updates(2);
        // Cut the third record five bytes into its body.
        let cut = two.len() + 12 + 5;
        let declared = (whole.len() - two.len() - 12) as u32;
        let (n, warnings, stats) = read_recovering(&whole[..cut]);
        assert_eq!(n, 2);
        assert_eq!(
            warnings[0].kind,
            WarningKind::TruncatedBody { declared, have: 5 }
        );
        assert_eq!(
            stats,
            IngestStats {
                recovered_records: 1,
                skipped_bytes: 17
            }
        );
    }

    #[test]
    fn recover_resynchronizes_past_oversized_record() {
        let one = sample_updates(1);
        let rest = {
            let all = sample_updates(3);
            all[one.len()..].to_vec()
        };
        let mut bytes = one;
        // A header declaring a gigabyte, directly before two valid records.
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
        bytes.extend_from_slice(&16u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&(1u32 << 30).to_be_bytes());
        bytes.extend_from_slice(&rest);

        let (n, warnings, stats) = read_recovering(&bytes);
        assert_eq!(n, 3, "both records after the bad header are recovered");
        assert_eq!(warnings.len(), 1);
        assert_eq!(
            warnings[0].kind,
            WarningKind::OversizedRecord {
                declared: 1 << 30,
                cap: DEFAULT_RECORD_CAP
            }
        );
        assert_eq!(
            stats,
            IngestStats {
                recovered_records: 1,
                skipped_bytes: 12
            }
        );
    }

    #[test]
    fn recover_consumes_trailing_garbage() {
        let mut bytes = sample_updates(1);
        bytes.extend_from_slice(&[0xAA; 100]);
        let (n, warnings, stats) = read_recovering(&bytes);
        assert_eq!(n, 1);
        assert_eq!(warnings.len(), 1);
        assert!(matches!(
            warnings[0].kind,
            WarningKind::OversizedRecord { .. }
        ));
        assert_eq!(stats.skipped_bytes, 100, "every garbage byte accounted");
    }

    #[test]
    fn recover_with_cap_aborts_on_heavy_damage() {
        let mut bytes = sample_updates(1);
        bytes.extend_from_slice(&[0xAA; 100]);
        let err = UpdatesReader::read_all_with_policy(
            &bytes[..],
            RecoveryPolicy::RecoverWithCap {
                max_skipped_bytes: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MrtError::SkipBudgetExhausted { cap: 16, skipped } if skipped > 16
        ));
    }

    #[test]
    fn ingest_stats_absorb() {
        let mut a = IngestStats {
            recovered_records: 1,
            skipped_bytes: 10,
        };
        assert!(!a.is_clean());
        assert!(IngestStats::default().is_clean());
        a.absorb(IngestStats {
            recovered_records: 2,
            skipped_bytes: 5,
        });
        assert_eq!(
            a,
            IngestStats {
                recovered_records: 3,
                skipped_bytes: 15
            }
        );
    }
}
