//! Tolerant, streaming MRT reader.

use crate::attrs::{self, MpReachForm};
use crate::error::{DecodeError, MrtError};
use crate::record::{
    Bgp4mpMessage, BgpMessage, MrtRecord, PeerEntry, PeerIndexTable, RibEntriesRecord, RibEntryRaw,
    UpdateMessage,
};
use crate::table_dump_v1::{decode_table_dump, SUBTYPE_AFI_IPV4, SUBTYPE_AFI_IPV6};
use crate::warnings::{MrtWarning, WarningKind};
use crate::wire::Cursor;
use crate::{
    SUBTYPE_BGP4MP_MESSAGE, SUBTYPE_BGP4MP_MESSAGE_ADDPATH, SUBTYPE_BGP4MP_MESSAGE_AS4,
    SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH, SUBTYPE_PEER_INDEX_TABLE, SUBTYPE_RIB_IPV4_UNICAST,
    SUBTYPE_RIB_IPV4_UNICAST_ADDPATH, SUBTYPE_RIB_IPV6_UNICAST, SUBTYPE_RIB_IPV6_UNICAST_ADDPATH,
    TYPE_BGP4MP, TYPE_BGP4MP_ET, TYPE_TABLE_DUMP, TYPE_TABLE_DUMP_V2,
};
use bgp_types::{Asn, Family, PeerKey, RibEntry, RouteAttrs, SimTime, UpdateRecord};
use bytes::Bytes;
use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Default cap on a single record body; protects against corrupt length
/// fields demanding absurd allocations.
pub const DEFAULT_RECORD_CAP: u32 = 32 * 1024 * 1024;

/// A framed-but-undecoded MRT record.
#[derive(Debug, Clone)]
pub struct RawRecord {
    /// Header timestamp (Unix seconds).
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// The record body.
    pub body: Bytes,
}

/// Output of one reader step: a decoded record or a warning for a record
/// that was skipped.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ReadItem {
    /// A successfully decoded record.
    Record(MrtRecord),
    /// A record that could not be decoded and was skipped.
    Warning(MrtWarning),
}

/// Streaming MRT reader: strict per record, tolerant per stream.
#[derive(Debug)]
pub struct MrtReader<R> {
    inner: R,
    record_index: u64,
    cap: u32,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R) -> Self {
        Self::with_cap(inner, DEFAULT_RECORD_CAP)
    }

    /// Wraps a byte source with a custom record-size cap.
    pub fn with_cap(inner: R, cap: u32) -> Self {
        MrtReader {
            inner,
            record_index: 0,
            cap,
        }
    }

    /// Index of the next record to be read.
    pub fn record_index(&self) -> u64 {
        self.record_index
    }

    /// Frames the next record without decoding its body.
    ///
    /// Returns `Ok(None)` at a clean end of stream.
    pub fn next_raw(&mut self) -> Result<Option<RawRecord>, MrtError> {
        let mut header = [0u8; 12];
        let mut filled = 0;
        while filled < header.len() {
            let n = self.inner.read(&mut header[filled..])?;
            if n == 0 {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(MrtError::TruncatedHeader { have: filled })
                };
            }
            filled += n;
        }
        let timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
        let mrt_type = u16::from_be_bytes([header[4], header[5]]);
        let subtype = u16::from_be_bytes([header[6], header[7]]);
        let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
        if length > self.cap {
            return Err(MrtError::RecordTooLarge {
                declared: length,
                cap: self.cap,
            });
        }
        let mut body = vec![0u8; length as usize];
        self.inner.read_exact(&mut body).map_err(MrtError::Io)?;
        self.record_index += 1;
        Ok(Some(RawRecord {
            timestamp,
            mrt_type,
            subtype,
            body: Bytes::from(body),
        }))
    }

    /// Decodes the next record, converting per-record failures into
    /// warnings. Returns `Ok(None)` at a clean end of stream; `Err` only
    /// for stream-fatal conditions.
    ///
    /// (Deliberately named like `Iterator::next`; a fallible pull API
    /// cannot implement `Iterator` without hiding stream-fatal errors.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<ReadItem>, MrtError> {
        let Some(raw) = self.next_raw()? else {
            return Ok(None);
        };
        let index = self.record_index - 1;
        Ok(Some(decode_record(&raw, index)))
    }

    /// Drains the stream into (records, warnings).
    pub fn read_all(mut self) -> Result<(Vec<MrtRecord>, Vec<MrtWarning>), MrtError> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        while let Some(item) = self.next()? {
            match item {
                ReadItem::Record(r) => records.push(r),
                ReadItem::Warning(w) => warnings.push(w),
            }
        }
        Ok((records, warnings))
    }
}

/// Decodes a framed record, mapping failures to warnings.
pub fn decode_record(raw: &RawRecord, index: u64) -> ReadItem {
    let ts = SimTime::from_unix(raw.timestamp as u64);
    let warn = |kind: WarningKind, peer: Option<PeerKey>| {
        ReadItem::Warning(MrtWarning {
            record_index: index,
            timestamp: Some(ts),
            peer,
            kind,
        })
    };
    match (raw.mrt_type, raw.subtype) {
        (TYPE_TABLE_DUMP, sub @ (SUBTYPE_AFI_IPV4 | SUBTYPE_AFI_IPV6)) => {
            let family = if sub == SUBTYPE_AFI_IPV4 {
                Family::Ipv4
            } else {
                Family::Ipv6
            };
            match decode_table_dump(&mut Cursor::new(raw.body.clone()), family) {
                Ok(r) => ReadItem::Record(MrtRecord::TableDumpV1(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP, sub) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP,
                subtype: sub,
            },
            None,
        ),
        (TYPE_TABLE_DUMP_V2, SUBTYPE_PEER_INDEX_TABLE) => {
            match decode_peer_index_table(&mut Cursor::new(raw.body.clone())) {
                Ok(t) => ReadItem::Record(MrtRecord::PeerIndexTable(t)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV4_UNICAST) => {
            match decode_rib(&mut Cursor::new(raw.body.clone()), Family::Ipv4) {
                Ok(r) => ReadItem::Record(MrtRecord::RibEntries(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (TYPE_TABLE_DUMP_V2, SUBTYPE_RIB_IPV6_UNICAST) => {
            match decode_rib(&mut Cursor::new(raw.body.clone()), Family::Ipv6) {
                Ok(r) => ReadItem::Record(MrtRecord::RibEntries(r)),
                Err(e) => warn(WarningKind::from_decode(&e), None),
            }
        }
        (
            TYPE_TABLE_DUMP_V2,
            sub @ (SUBTYPE_RIB_IPV4_UNICAST_ADDPATH | SUBTYPE_RIB_IPV6_UNICAST_ADDPATH),
        ) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP_V2,
                subtype: sub,
            },
            None,
        ),
        (TYPE_TABLE_DUMP_V2, sub) => warn(
            WarningKind::UnknownSubtype {
                mrt_type: TYPE_TABLE_DUMP_V2,
                subtype: sub,
            },
            None,
        ),
        (t @ (TYPE_BGP4MP | TYPE_BGP4MP_ET), sub) => {
            let mut cur = Cursor::new(raw.body.clone());
            if t == TYPE_BGP4MP_ET {
                if let Err(e) = cur.skip(4, "BGP4MP_ET microseconds") {
                    return warn(WarningKind::from_decode(&e), None);
                }
            }
            match sub {
                SUBTYPE_BGP4MP_MESSAGE | SUBTYPE_BGP4MP_MESSAGE_AS4 => {
                    let as4 = sub == SUBTYPE_BGP4MP_MESSAGE_AS4;
                    match decode_bgp4mp_message(&mut cur, as4, ts) {
                        Ok(m) => ReadItem::Record(MrtRecord::Bgp4mp(m)),
                        Err((e, peer)) => warn(WarningKind::from_decode(&e), peer),
                    }
                }
                SUBTYPE_BGP4MP_MESSAGE_ADDPATH | SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH | 10 | 11 => {
                    // ADD-PATH records: we do not decode them, but the peer
                    // fields sit before the NLRI, so best-effort attribution
                    // is possible — the paper attributes these warnings to
                    // specific peer ASNs.
                    let as4 = sub == SUBTYPE_BGP4MP_MESSAGE_AS4_ADDPATH || sub == 11;
                    let peer = decode_bgp4mp_peer(&mut cur, as4).ok().map(|(p, _)| p);
                    warn(
                        WarningKind::UnknownSubtype {
                            mrt_type: t,
                            subtype: sub,
                        },
                        peer,
                    )
                }
                _ => warn(
                    WarningKind::UnknownSubtype {
                        mrt_type: t,
                        subtype: sub,
                    },
                    None,
                ),
            }
        }
        (t, _) => warn(WarningKind::UnknownType { mrt_type: t }, None),
    }
}

fn decode_peer_index_table(cur: &mut Cursor) -> Result<PeerIndexTable, DecodeError> {
    let collector_bgp_id = cur.u32("collector BGP id")?;
    let name_len = cur.u16("view name length")? as usize;
    let name_bytes = cur.take(name_len, "view name")?;
    let view_name = String::from_utf8_lossy(&name_bytes).into_owned();
    let count = cur.u16("peer count")? as usize;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        let peer_type = cur.u8("peer type")?;
        let bgp_id = cur.u32("peer BGP id")?;
        let addr = if peer_type & 0x01 != 0 {
            IpAddr::V6(Ipv6Addr::from(cur.u128("peer IPv6 address")?))
        } else {
            IpAddr::V4(Ipv4Addr::from(cur.u32("peer IPv4 address")?))
        };
        let asn = if peer_type & 0x02 != 0 {
            Asn(cur.u32("peer ASN (4 byte)")?)
        } else {
            Asn(cur.u16("peer ASN (2 byte)")? as u32)
        };
        peers.push(PeerEntry { bgp_id, addr, asn });
    }
    if !cur.is_empty() {
        return Err(DecodeError::Invalid {
            context: "trailing bytes after PEER_INDEX_TABLE",
        });
    }
    Ok(PeerIndexTable {
        collector_bgp_id,
        view_name,
        peers,
    })
}

fn decode_rib(cur: &mut Cursor, family: Family) -> Result<RibEntriesRecord, DecodeError> {
    let sequence = cur.u32("RIB sequence number")?;
    let prefix = crate::nlri::decode_prefix(cur, family)?;
    let count = cur.u16("RIB entry count")? as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let peer_index = cur.u16("RIB entry peer index")?;
        let originated = cur.u32("RIB entry originated time")?;
        let attr_len = cur.u16("RIB entry attribute length")? as usize;
        let mut body = cur.sub(attr_len, "RIB entry attributes")?;
        let attrs = attrs::decode_attrs(&mut body, 4, MpReachForm::Abbreviated)?;
        entries.push(RibEntryRaw {
            peer_index,
            originated,
            attrs,
        });
    }
    if !cur.is_empty() {
        return Err(DecodeError::Invalid {
            context: "trailing bytes after RIB record",
        });
    }
    Ok(RibEntriesRecord {
        sequence,
        prefix,
        entries,
    })
}

type PeerContext = (PeerKey, (Asn, IpAddr));

/// Decodes the BGP4MP peer/local preamble; returns (peer, (local_asn,
/// local_addr)).
fn decode_bgp4mp_peer(cur: &mut Cursor, as4: bool) -> Result<PeerContext, DecodeError> {
    let (peer_asn, local_asn) = if as4 {
        (Asn(cur.u32("peer ASN")?), Asn(cur.u32("local ASN")?))
    } else {
        (
            Asn(cur.u16("peer ASN")? as u32),
            Asn(cur.u16("local ASN")? as u32),
        )
    };
    cur.skip(2, "interface index")?;
    let afi = cur.u16("address family")?;
    let (peer_addr, local_addr) = match afi {
        1 => (
            IpAddr::V4(Ipv4Addr::from(cur.u32("peer address")?)),
            IpAddr::V4(Ipv4Addr::from(cur.u32("local address")?)),
        ),
        2 => (
            IpAddr::V6(Ipv6Addr::from(cur.u128("peer address")?)),
            IpAddr::V6(Ipv6Addr::from(cur.u128("local address")?)),
        ),
        _ => {
            return Err(DecodeError::Invalid {
                context: "BGP4MP address family",
            })
        }
    };
    Ok((PeerKey::new(peer_asn, peer_addr), (local_asn, local_addr)))
}

#[allow(clippy::result_large_err)]
fn decode_bgp4mp_message(
    cur: &mut Cursor,
    as4: bool,
    ts: SimTime,
) -> Result<Bgp4mpMessage, (DecodeError, Option<PeerKey>)> {
    let (peer, (local_asn, local_addr)) = decode_bgp4mp_peer(cur, as4).map_err(|e| (e, None))?;
    let fail = |e: DecodeError| (e, Some(peer));

    // BGP message header: 16-byte marker, 2-byte length, 1-byte type.
    let marker = cur.take(16, "BGP marker").map_err(fail)?;
    if marker.iter().any(|&b| b != 0xFF) {
        return Err(fail(DecodeError::Invalid {
            context: "BGP marker",
        }));
    }
    let msg_len = cur.u16("BGP message length").map_err(fail)? as usize;
    let msg_type = cur.u8("BGP message type").map_err(fail)?;
    if msg_len < 19 {
        return Err(fail(DecodeError::Invalid {
            context: "BGP message length",
        }));
    }
    let mut body = cur.sub(msg_len - 19, "BGP message body").map_err(fail)?;
    if !cur.is_empty() {
        return Err(fail(DecodeError::Invalid {
            context: "trailing bytes after BGP message",
        }));
    }
    let message = if msg_type == 2 {
        let withdrawn_len = body.u16("withdrawn routes length").map_err(fail)? as usize;
        let mut wcur = body.sub(withdrawn_len, "withdrawn routes").map_err(fail)?;
        let withdrawn = crate::nlri::decode_prefix_run(&mut wcur, Family::Ipv4).map_err(fail)?;
        let attr_len = body.u16("path attribute length").map_err(fail)? as usize;
        let mut acur = body.sub(attr_len, "path attributes").map_err(fail)?;
        let attrs = attrs::decode_attrs(&mut acur, if as4 { 4 } else { 2 }, MpReachForm::Full)
            .map_err(fail)?;
        let announced = crate::nlri::decode_prefix_run(&mut body, Family::Ipv4).map_err(fail)?;
        BgpMessage::Update(UpdateMessage {
            withdrawn,
            attrs,
            announced,
        })
    } else {
        BgpMessage::Other { msg_type }
    };
    Ok(Bgp4mpMessage {
        timestamp: ts,
        peer_asn: peer.asn,
        peer_addr: peer.addr,
        local_asn,
        local_addr,
        message,
    })
}

/// A fully read RIB dump (TABLE_DUMP_V2 or legacy TABLE_DUMP).
#[derive(Debug, Clone, Default)]
pub struct RibDump {
    /// The peer index table (empty if the dump had none).
    pub table: PeerIndexTable,
    /// All TABLE_DUMP_V2 RIB records in file order.
    pub routes: Vec<RibEntriesRecord>,
    /// Legacy TABLE_DUMP (v1) route records in file order.
    pub v1_routes: Vec<crate::table_dump_v1::TableDumpRecord>,
    /// Warnings collected while reading.
    pub warnings: Vec<MrtWarning>,
}

impl RibDump {
    /// Iterates `(peer, prefix, attrs-as-RouteAttrs)` over every entry,
    /// resolving peer indexes. Entries with dangling indexes are appended to
    /// a fresh warning list returned alongside.
    pub fn entries(&self) -> (Vec<(PeerKey, RibEntry)>, Vec<MrtWarning>) {
        let mut out = Vec::new();
        let mut warnings = Vec::new();
        for rec in &self.v1_routes {
            out.push((
                rec.peer,
                RibEntry {
                    prefix: rec.prefix,
                    attrs: RouteAttrs {
                        path: rec.attrs.as_path.clone(),
                        origin: rec.attrs.origin,
                        communities: rec.attrs.communities.clone(),
                    },
                },
            ));
        }
        for (i, rec) in self.routes.iter().enumerate() {
            for e in &rec.entries {
                match self.table.peer_key(e.peer_index) {
                    Some(peer) => {
                        let attrs = RouteAttrs {
                            path: e.attrs.as_path.clone(),
                            origin: e.attrs.origin,
                            communities: e.attrs.communities.clone(),
                        };
                        out.push((
                            peer,
                            RibEntry {
                                prefix: rec.prefix,
                                attrs,
                            },
                        ));
                    }
                    None => warnings.push(MrtWarning {
                        record_index: i as u64,
                        timestamp: None,
                        peer: None,
                        kind: WarningKind::MissingPeerIndex {
                            index: e.peer_index,
                        },
                    }),
                }
            }
        }
        (out, warnings)
    }
}

/// Reads an entire TABLE_DUMP_V2 RIB dump from a byte source.
#[derive(Debug)]
pub struct RibDumpReader;

impl RibDumpReader {
    /// Reads until end of stream, collecting the peer table, routes, and
    /// warnings.
    pub fn read_all<R: Read>(reader: R) -> Result<RibDump, MrtError> {
        let mut mrt = MrtReader::new(reader);
        let mut dump = RibDump::default();
        while let Some(item) = mrt.next()? {
            match item {
                ReadItem::Record(MrtRecord::PeerIndexTable(t)) => dump.table = t,
                ReadItem::Record(MrtRecord::RibEntries(r)) => dump.routes.push(r),
                ReadItem::Record(MrtRecord::TableDumpV1(r)) => dump.v1_routes.push(r),
                ReadItem::Record(MrtRecord::Bgp4mp(_)) => {
                    dump.warnings.push(MrtWarning {
                        record_index: mrt.record_index() - 1,
                        timestamp: None,
                        peer: None,
                        kind: WarningKind::Decode {
                            context: "BGP4MP record inside a RIB dump".into(),
                        },
                    });
                }
                ReadItem::Warning(w) => dump.warnings.push(w),
            }
        }
        Ok(dump)
    }
}

/// Reads an entire BGP4MP updates file from a byte source.
#[derive(Debug)]
pub struct UpdatesReader;

impl UpdatesReader {
    /// Reads until end of stream, converting UPDATE messages into
    /// [`UpdateRecord`]s. Non-UPDATE BGP messages are ignored.
    pub fn read_all<R: Read>(reader: R) -> Result<(Vec<UpdateRecord>, Vec<MrtWarning>), MrtError> {
        let mut mrt = MrtReader::new(reader);
        let mut updates = Vec::new();
        let mut warnings = Vec::new();
        while let Some(item) = mrt.next()? {
            match item {
                ReadItem::Record(MrtRecord::Bgp4mp(m)) => {
                    if let Some(u) = m.to_update_record() {
                        updates.push(u);
                    }
                }
                ReadItem::Record(_) => warnings.push(MrtWarning {
                    record_index: mrt.record_index() - 1,
                    timestamp: None,
                    peer: None,
                    kind: WarningKind::Decode {
                        context: "RIB record inside an updates file".into(),
                    },
                }),
                ReadItem::Warning(w) => warnings.push(w),
            }
        }
        Ok((updates, warnings))
    }
}
