//! Checked big-endian cursor over a record body.
//!
//! `bytes::Buf` panics on under-read; MRT decoding must never panic on
//! untrusted input, so this thin wrapper converts every read into a
//! `Result` carrying the decode context.

use crate::error::DecodeError;
use bytes::{Buf, Bytes};

/// A bounds-checked cursor over one MRT record body.
#[derive(Debug, Clone)]
pub struct Cursor {
    buf: Bytes,
}

impl Cursor {
    /// Wraps a record body.
    pub fn new(buf: Bytes) -> Self {
        Cursor { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Returns `true` when the body is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.remaining() == 0
    }

    fn need(&self, n: usize, context: &'static str) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated { context })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        self.need(1, context)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        self.need(2, context)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        self.need(4, context)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u128`.
    pub fn u128(&mut self, context: &'static str) -> Result<u128, DecodeError> {
        self.need(16, context)?;
        Ok(self.buf.get_u128())
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<Bytes, DecodeError> {
        self.need(n, context)?;
        Ok(self.buf.split_to(n))
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize, context: &'static str) -> Result<(), DecodeError> {
        self.need(n, context)?;
        self.buf.advance(n);
        Ok(())
    }

    /// Splits off a length-delimited sub-cursor.
    pub fn sub(&mut self, n: usize, context: &'static str) -> Result<Cursor, DecodeError> {
        Ok(Cursor::new(self.take(n, context)?))
    }
}

/// Splits a 12-byte MRT common header into
/// `(timestamp, type, subtype, length)`.
pub fn parse_header(header: &[u8; 12]) -> (u32, u16, u16, u32) {
    let timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    let mrt_type = u16::from_be_bytes([header[4], header[5]]);
    let subtype = u16::from_be_bytes([header[6], header[7]]);
    let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    (timestamp, mrt_type, subtype, length)
}

/// A cheap plausibility test used by the resynchronizing reader: could
/// these 12 bytes be the common header of a record from the archives this
/// crate handles? True when the type is one this crate recognizes, the
/// subtype is within the small range those types use, and the declared
/// length fits under `cap`. Deliberately loose — a false positive costs
/// one garbage record (contained by per-record decoding), a false negative
/// loses the rest of the file.
pub fn plausible_header(header: &[u8; 12], cap: u32) -> bool {
    let (_, mrt_type, subtype, length) = parse_header(header);
    matches!(
        mrt_type,
        crate::TYPE_TABLE_DUMP
            | crate::TYPE_TABLE_DUMP_V2
            | crate::TYPE_BGP4MP
            | crate::TYPE_BGP4MP_ET
    ) && subtype <= 16
        && length <= cap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cur(bytes: &[u8]) -> Cursor {
        Cursor::new(Bytes::copy_from_slice(bytes))
    }

    #[test]
    fn reads_big_endian() {
        let mut c = cur(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07]);
        assert_eq!(c.u8("a").unwrap(), 1);
        assert_eq!(c.u16("b").unwrap(), 0x0203);
        assert_eq!(c.u32("c").unwrap(), 0x0405_0607);
        assert!(c.is_empty());
    }

    #[test]
    fn under_read_is_an_error_not_a_panic() {
        let mut c = cur(&[0x01]);
        assert_eq!(
            c.u32("field"),
            Err(DecodeError::Truncated { context: "field" })
        );
        // The failed read consumed nothing.
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.u8("x").unwrap(), 1);
    }

    #[test]
    fn take_skip_sub() {
        let mut c = cur(&[1, 2, 3, 4, 5]);
        assert_eq!(c.take(2, "t").unwrap().as_ref(), &[1, 2]);
        c.skip(1, "s").unwrap();
        let mut s = c.sub(2, "sub").unwrap();
        assert_eq!(s.u16("v").unwrap(), 0x0405);
        assert!(c.is_empty());
        assert!(c.take(1, "over").is_err());
        assert!(c.skip(1, "over").is_err());
        assert!(c.sub(1, "over").is_err());
    }

    #[test]
    fn u128_read() {
        let mut c = cur(&[0xFF; 16]);
        assert_eq!(c.u128("v6").unwrap(), u128::MAX);
        assert!(cur(&[0u8; 15]).u128("v6").is_err());
    }

    #[test]
    fn header_parse_and_plausibility() {
        let mut h = [0u8; 12];
        h[0..4].copy_from_slice(&0x5002_0000u32.to_be_bytes());
        h[4..6].copy_from_slice(&13u16.to_be_bytes());
        h[6..8].copy_from_slice(&2u16.to_be_bytes());
        h[8..12].copy_from_slice(&64u32.to_be_bytes());
        assert_eq!(parse_header(&h), (0x5002_0000, 13, 2, 64));
        assert!(plausible_header(&h, 1 << 20));

        // Unknown type.
        h[4..6].copy_from_slice(&99u16.to_be_bytes());
        assert!(!plausible_header(&h, 1 << 20));
        h[4..6].copy_from_slice(&16u16.to_be_bytes());
        assert!(plausible_header(&h, 1 << 20));

        // Subtype out of the plausible range.
        h[6..8].copy_from_slice(&17u16.to_be_bytes());
        assert!(!plausible_header(&h, 1 << 20));
        h[6..8].copy_from_slice(&4u16.to_be_bytes());

        // Length above the cap.
        h[8..12].copy_from_slice(&(1u32 << 30).to_be_bytes());
        assert!(!plausible_header(&h, 1 << 20));
    }
}
