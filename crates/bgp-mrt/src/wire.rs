//! Checked big-endian cursor over a record body.
//!
//! `bytes::Buf` panics on under-read; MRT decoding must never panic on
//! untrusted input, so this thin wrapper converts every read into a
//! `Result` carrying the decode context.

use crate::error::DecodeError;
use bytes::{Buf, Bytes};

/// A bounds-checked cursor over one MRT record body.
#[derive(Debug, Clone)]
pub struct Cursor {
    buf: Bytes,
}

impl Cursor {
    /// Wraps a record body.
    pub fn new(buf: Bytes) -> Self {
        Cursor { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Returns `true` when the body is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.remaining() == 0
    }

    fn need(&self, n: usize, context: &'static str) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated { context })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        self.need(1, context)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        self.need(2, context)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        self.need(4, context)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u128`.
    pub fn u128(&mut self, context: &'static str) -> Result<u128, DecodeError> {
        self.need(16, context)?;
        Ok(self.buf.get_u128())
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<Bytes, DecodeError> {
        self.need(n, context)?;
        Ok(self.buf.split_to(n))
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize, context: &'static str) -> Result<(), DecodeError> {
        self.need(n, context)?;
        self.buf.advance(n);
        Ok(())
    }

    /// Splits off a length-delimited sub-cursor.
    pub fn sub(&mut self, n: usize, context: &'static str) -> Result<Cursor, DecodeError> {
        Ok(Cursor::new(self.take(n, context)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cur(bytes: &[u8]) -> Cursor {
        Cursor::new(Bytes::copy_from_slice(bytes))
    }

    #[test]
    fn reads_big_endian() {
        let mut c = cur(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07]);
        assert_eq!(c.u8("a").unwrap(), 1);
        assert_eq!(c.u16("b").unwrap(), 0x0203);
        assert_eq!(c.u32("c").unwrap(), 0x0405_0607);
        assert!(c.is_empty());
    }

    #[test]
    fn under_read_is_an_error_not_a_panic() {
        let mut c = cur(&[0x01]);
        assert_eq!(
            c.u32("field"),
            Err(DecodeError::Truncated { context: "field" })
        );
        // The failed read consumed nothing.
        assert_eq!(c.remaining(), 1);
        assert_eq!(c.u8("x").unwrap(), 1);
    }

    #[test]
    fn take_skip_sub() {
        let mut c = cur(&[1, 2, 3, 4, 5]);
        assert_eq!(c.take(2, "t").unwrap().as_ref(), &[1, 2]);
        c.skip(1, "s").unwrap();
        let mut s = c.sub(2, "sub").unwrap();
        assert_eq!(s.u16("v").unwrap(), 0x0405);
        assert!(c.is_empty());
        assert!(c.take(1, "over").is_err());
        assert!(c.skip(1, "over").is_err());
        assert!(c.sub(1, "over").is_err());
    }

    #[test]
    fn u128_read() {
        let mut c = cur(&[0xFF; 16]);
        assert_eq!(c.u128("v6").unwrap(), u128::MAX);
        assert!(cur(&[0u8; 15]).u128("v6").is_err());
    }
}
