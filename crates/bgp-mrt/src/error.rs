//! Errors for MRT encoding and decoding.

use std::fmt;
use std::io;

/// A fatal error while reading or writing an MRT stream.
///
/// Per-record *format* problems are not fatal: the tolerant reader converts
/// them into [`crate::MrtWarning`]s and resynchronizes. `MrtError` is
/// reserved for conditions that prevent continuing at all (I/O failure, a
/// header that cannot be framed).
#[derive(Debug)]
pub enum MrtError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The stream ended in the middle of an MRT common header.
    TruncatedHeader {
        /// Bytes actually available.
        have: usize,
    },
    /// A record declared a length larger than the configured sanity cap,
    /// which would otherwise let a corrupt length field demand gigabytes.
    RecordTooLarge {
        /// Declared body length.
        declared: u32,
        /// The cap in force.
        cap: u32,
    },
    /// A capped recovery read ([`RecoveryPolicy::RecoverWithCap`]) skipped
    /// more bytes than its budget allows — the stream is damaged beyond
    /// what the caller agreed to tolerate.
    ///
    /// [`RecoveryPolicy::RecoverWithCap`]: crate::RecoveryPolicy::RecoverWithCap
    SkipBudgetExhausted {
        /// Total bytes skipped so far, including the overshoot.
        skipped: u64,
        /// The budget in force.
        cap: u64,
    },
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
            MrtError::TruncatedHeader { have } => {
                write!(f, "stream ends inside an MRT header ({have} bytes left)")
            }
            MrtError::RecordTooLarge { declared, cap } => {
                write!(f, "MRT record declares {declared} bytes, cap is {cap}")
            }
            MrtError::SkipBudgetExhausted { skipped, cap } => {
                write!(
                    f,
                    "recovery skipped {skipped} bytes, more than the {cap}-byte budget"
                )
            }
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

/// A non-fatal decode problem within one record body.
///
/// Converted by the reader into an [`crate::MrtWarning`] carrying record
/// context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The record body ended before a field was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A field held a value the decoder cannot represent.
    Invalid {
        /// What was being decoded.
        context: &'static str,
    },
}

impl DecodeError {
    /// Short label used in warning text.
    pub fn context(&self) -> &'static str {
        match self {
            DecodeError::Truncated { context } | DecodeError::Invalid { context } => context,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { context } => write!(f, "truncated while decoding {context}"),
            DecodeError::Invalid { context } => write!(f, "invalid {context}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        let e = MrtError::TruncatedHeader { have: 3 };
        assert!(e.to_string().contains("3 bytes"));
        let e = MrtError::RecordTooLarge {
            declared: 1 << 30,
            cap: 1 << 24,
        };
        assert!(e.to_string().contains("cap"));
        let e = MrtError::SkipBudgetExhausted {
            skipped: 4097,
            cap: 4096,
        };
        assert!(e.to_string().contains("4097"));
        assert!(e.to_string().contains("budget"));
        let e = DecodeError::Truncated { context: "AS_PATH" };
        assert_eq!(e.to_string(), "truncated while decoding AS_PATH");
        assert_eq!(e.context(), "AS_PATH");
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let e: MrtError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("eof"));
    }
}
