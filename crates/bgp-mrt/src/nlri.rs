//! NLRI (prefix) encoding and decoding (RFC 4271 §4.3).
//!
//! A prefix on the wire is one length byte followed by
//! `ceil(len / 8)` address bytes.

use crate::error::DecodeError;
use crate::wire::Cursor;
use bgp_types::{Family, Ipv4Prefix, Ipv6Prefix, Prefix};
use bytes::BufMut;

/// Number of address bytes a prefix of `len` bits occupies on the wire.
pub fn wire_bytes(len: u8) -> usize {
    (len as usize).div_ceil(8)
}

/// Decodes one prefix of the given family from the cursor.
///
/// Fails on lengths above the family maximum and on set host bits in the
/// trailing partial byte (non-canonical announcements do occur in the wild;
/// we mask rather than reject whole-byte garbage, but a length byte above
/// the family max is unrecoverable).
pub fn decode_prefix(cur: &mut Cursor, family: Family) -> Result<Prefix, DecodeError> {
    let len = cur.u8("NLRI length")?;
    if len > family.max_len() {
        return Err(DecodeError::Invalid {
            context: "NLRI length",
        });
    }
    let nbytes = wire_bytes(len);
    let raw = cur.take(nbytes, "NLRI address bytes")?;
    match family {
        Family::Ipv4 => {
            let mut octets = [0u8; 4];
            octets[..nbytes].copy_from_slice(&raw);
            let addr = u32::from_be_bytes(octets);
            Ok(Prefix::V4(
                Ipv4Prefix::new_masked(addr, len).expect("len validated above"),
            ))
        }
        Family::Ipv6 => {
            let mut octets = [0u8; 16];
            octets[..nbytes].copy_from_slice(&raw);
            let addr = u128::from_be_bytes(octets);
            Ok(Prefix::V6(
                Ipv6Prefix::new_masked(addr, len).expect("len validated above"),
            ))
        }
    }
}

/// Decodes prefixes of one family until the cursor is exhausted.
pub fn decode_prefix_run(cur: &mut Cursor, family: Family) -> Result<Vec<Prefix>, DecodeError> {
    let mut out = Vec::new();
    while !cur.is_empty() {
        out.push(decode_prefix(cur, family)?);
    }
    Ok(out)
}

/// Encodes one prefix in wire form.
pub fn encode_prefix(out: &mut impl BufMut, prefix: Prefix) {
    match prefix {
        Prefix::V4(p) => {
            out.put_u8(p.len());
            let bytes = p.addr().to_be_bytes();
            out.put_slice(&bytes[..wire_bytes(p.len())]);
        }
        Prefix::V6(p) => {
            out.put_u8(p.len());
            let bytes = p.addr().to_be_bytes();
            out.put_slice(&bytes[..wire_bytes(p.len())]);
        }
    }
}

/// Bytes `encode_prefix` will emit for this prefix (length byte included).
pub fn encoded_len(prefix: Prefix) -> usize {
    1 + wire_bytes(prefix.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{Bytes, BytesMut};

    fn round_trip(s: &str) {
        let p: Prefix = s.parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&mut buf, p);
        assert_eq!(buf.len(), encoded_len(p));
        let mut cur = Cursor::new(buf.freeze());
        let decoded = decode_prefix(&mut cur, p.family()).unwrap();
        assert_eq!(decoded, p);
        assert!(cur.is_empty());
    }

    #[test]
    fn round_trips_v4() {
        for s in [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "192.0.2.0/24",
            "192.0.2.128/25",
            "1.2.3.4/32",
        ] {
            round_trip(s);
        }
    }

    #[test]
    fn round_trips_v6() {
        for s in ["::/0", "2001:db8::/32", "240a:a000::/20", "2001:db8::1/128"] {
            round_trip(s);
        }
    }

    #[test]
    fn partial_byte_encoding_is_minimal() {
        let p: Prefix = "10.128.0.0/9".parse().unwrap();
        let mut buf = BytesMut::new();
        encode_prefix(&mut buf, p);
        // 1 length byte + 2 address bytes for /9.
        assert_eq!(buf.as_ref(), &[9, 10, 128]);
    }

    #[test]
    fn decode_masks_stray_host_bits() {
        // /8 with a second byte present-but-dirty is not possible (only one
        // byte on the wire); /9 with low bits set in byte 2 gets masked.
        let mut cur = Cursor::new(Bytes::from_static(&[9, 10, 0xFF]));
        let p = decode_prefix(&mut cur, Family::Ipv4).unwrap();
        assert_eq!(p.to_string(), "10.128.0.0/9");
    }

    #[test]
    fn decode_rejects_oversized_length() {
        let mut cur = Cursor::new(Bytes::from_static(&[33, 1, 2, 3, 4, 5]));
        assert!(decode_prefix(&mut cur, Family::Ipv4).is_err());
        let mut cur = Cursor::new(Bytes::from_static(&[129]));
        assert!(decode_prefix(&mut cur, Family::Ipv6).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut cur = Cursor::new(Bytes::from_static(&[24, 10, 0]));
        assert!(matches!(
            decode_prefix(&mut cur, Family::Ipv4),
            Err(DecodeError::Truncated { .. })
        ));
        let mut cur = Cursor::new(Bytes::from_static(&[]));
        assert!(decode_prefix(&mut cur, Family::Ipv4).is_err());
    }

    #[test]
    fn run_decoding() {
        let mut buf = BytesMut::new();
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "192.0.2.0/24".parse().unwrap();
        encode_prefix(&mut buf, a);
        encode_prefix(&mut buf, b);
        let mut cur = Cursor::new(buf.freeze());
        let run = decode_prefix_run(&mut cur, Family::Ipv4).unwrap();
        assert_eq!(run, vec![a, b]);
    }

    #[test]
    fn wire_bytes_boundaries() {
        assert_eq!(wire_bytes(0), 0);
        assert_eq!(wire_bytes(1), 1);
        assert_eq!(wire_bytes(8), 1);
        assert_eq!(wire_bytes(9), 2);
        assert_eq!(wire_bytes(24), 3);
        assert_eq!(wire_bytes(32), 4);
        assert_eq!(wire_bytes(128), 16);
    }
}
