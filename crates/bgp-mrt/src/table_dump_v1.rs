//! Legacy TABLE_DUMP (MRT type 12) — the format of the 2002-era RIS
//! archives the paper's §3 reproduction reads.
//!
//! One record per (prefix, peer) route:
//!
//! ```text
//! view (2) | sequence (2) | prefix (4/16) | mask (1) | status (1)
//! originated (4) | peer address (4/16) | peer AS (2) | attr len (2) | attrs
//! ```
//!
//! Subtype 1 = AFI_IPv4, subtype 2 = AFI_IPv6. ASNs are 2-byte (the format
//! predates RFC 6793), so 4-byte ASNs cannot be represented — writers must
//! map them to AS_TRANS, exactly as routers of the era did.

use crate::attrs::{self, MpReachForm, ParsedAttrs};
use crate::error::DecodeError;
use crate::wire::Cursor;
use crate::writer::write_raw;
use bgp_types::{Asn, Family, Ipv4Prefix, Ipv6Prefix, PeerKey, Prefix, SimTime};
use bytes::{BufMut, BytesMut};
use std::io::{self, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// MRT record type: TABLE_DUMP (v1).
pub const TYPE_TABLE_DUMP: u16 = 12;
/// TABLE_DUMP subtype: AFI_IPv4.
pub const SUBTYPE_AFI_IPV4: u16 = 1;
/// TABLE_DUMP subtype: AFI_IPv6.
pub const SUBTYPE_AFI_IPV6: u16 = 2;

/// One decoded TABLE_DUMP record: a single route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDumpRecord {
    /// View number (0 in public archives).
    pub view: u16,
    /// Sequence number (wraps at 65536 in real archives).
    pub sequence: u16,
    /// The announced prefix.
    pub prefix: Prefix,
    /// When the route was received (Unix seconds).
    pub originated: u32,
    /// The peer that sent the route.
    pub peer: PeerKey,
    /// Decoded path attributes.
    pub attrs: ParsedAttrs,
}

/// Decodes a TABLE_DUMP record body.
pub fn decode_table_dump(cur: &mut Cursor, family: Family) -> Result<TableDumpRecord, DecodeError> {
    let view = cur.u16("TABLE_DUMP view")?;
    let sequence = cur.u16("TABLE_DUMP sequence")?;
    let (prefix_addr, peer_addr_len) = match family {
        Family::Ipv4 => (PrefixAddr::V4(cur.u32("TABLE_DUMP prefix")?), 4),
        Family::Ipv6 => (PrefixAddr::V6(cur.u128("TABLE_DUMP prefix")?), 16),
    };
    let mask = cur.u8("TABLE_DUMP mask")?;
    cur.skip(1, "TABLE_DUMP status")?;
    let originated = cur.u32("TABLE_DUMP originated")?;
    let peer_addr = match peer_addr_len {
        4 => IpAddr::V4(Ipv4Addr::from(cur.u32("TABLE_DUMP peer address")?)),
        _ => IpAddr::V6(Ipv6Addr::from(cur.u128("TABLE_DUMP peer address")?)),
    };
    let peer_as = Asn(cur.u16("TABLE_DUMP peer AS")? as u32);
    let attr_len = cur.u16("TABLE_DUMP attribute length")? as usize;
    let mut body = cur.sub(attr_len, "TABLE_DUMP attributes")?;
    // TABLE_DUMP predates 4-byte ASNs: attributes use 2-byte encoding.
    let attrs = attrs::decode_attrs(&mut body, 2, MpReachForm::Abbreviated)?;
    if !cur.is_empty() {
        return Err(DecodeError::Invalid {
            context: "trailing bytes after TABLE_DUMP record",
        });
    }
    let prefix = match prefix_addr {
        PrefixAddr::V4(a) => {
            if mask > 32 {
                return Err(DecodeError::Invalid {
                    context: "TABLE_DUMP mask",
                });
            }
            Prefix::V4(Ipv4Prefix::new_masked(a, mask).expect("mask validated"))
        }
        PrefixAddr::V6(a) => {
            if mask > 128 {
                return Err(DecodeError::Invalid {
                    context: "TABLE_DUMP mask",
                });
            }
            Prefix::V6(Ipv6Prefix::new_masked(a, mask).expect("mask validated"))
        }
    };
    Ok(TableDumpRecord {
        view,
        sequence,
        prefix,
        originated,
        peer: PeerKey::new(peer_as, peer_addr),
        attrs,
    })
}

enum PrefixAddr {
    V4(u32),
    V6(u128),
}

/// Maps an ASN to its 2-byte representation, substituting AS_TRANS for
/// 4-byte ASNs as RFC 4893-era routers did.
fn as16(asn: Asn) -> u16 {
    if asn.is_16bit() {
        asn.0 as u16
    } else {
        Asn::TRANS.0 as u16
    }
}

/// Writes TABLE_DUMP (v1) records: one per route.
#[derive(Debug)]
pub struct TableDumpWriter<W> {
    w: W,
    sequence: u16,
}

impl<W: Write> TableDumpWriter<W> {
    /// Wraps a byte sink.
    pub fn new(w: W) -> Self {
        TableDumpWriter { w, sequence: 0 }
    }

    /// Writes one route. 4-byte ASNs in the path are written as AS_TRANS
    /// (the format cannot carry them); prefer TABLE_DUMP_V2 for modern data.
    pub fn write_route(
        &mut self,
        timestamp: SimTime,
        prefix: Prefix,
        peer: &PeerKey,
        attrs: &ParsedAttrs,
    ) -> io::Result<()> {
        let subtype = match prefix.family() {
            Family::Ipv4 => SUBTYPE_AFI_IPV4,
            Family::Ipv6 => SUBTYPE_AFI_IPV6,
        };
        let mut body = BytesMut::with_capacity(64);
        body.put_u16(0); // view
        body.put_u16(self.sequence);
        self.sequence = self.sequence.wrapping_add(1);
        match prefix {
            Prefix::V4(p) => body.put_u32(p.addr()),
            Prefix::V6(p) => body.put_u128(p.addr()),
        }
        body.put_u8(prefix.len());
        body.put_u8(1); // status, always 1 in archives
        body.put_u32(timestamp.unix() as u32);
        match (prefix.family(), peer.addr) {
            (Family::Ipv4, IpAddr::V4(a)) => body.put_u32(u32::from(a)),
            (Family::Ipv4, IpAddr::V6(_)) => body.put_u32(u32::from(Ipv4Addr::new(192, 0, 2, 1))),
            (Family::Ipv6, IpAddr::V6(a)) => body.put_u128(u128::from(a)),
            (Family::Ipv6, IpAddr::V4(a)) => body.put_u128(u128::from(a.to_ipv6_mapped())),
        }
        body.put_u16(as16(peer.asn));
        let attr_bytes = attrs::encode_attrs(attrs, 2, MpReachForm::Abbreviated);
        body.put_u16(attr_bytes.len() as u16);
        body.put_slice(&attr_bytes);
        write_raw(
            &mut self.w,
            timestamp.unix() as u32,
            TYPE_TABLE_DUMP,
            subtype,
            &body,
        )
    }

    /// Unwraps the sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{MrtReader, ReadItem};
    use crate::record::MrtRecord;

    fn peer() -> PeerKey {
        PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap())
    }

    fn path_attrs(path: &str) -> ParsedAttrs {
        let mut a = ParsedAttrs::from_path(path.parse().unwrap());
        a.next_hop = Some(Ipv4Addr::new(10, 0, 0, 1));
        a
    }

    #[test]
    fn v4_round_trip() {
        let ts = SimTime::from_ymd_hms(2002, 1, 15, 8, 0, 0);
        let mut w = TableDumpWriter::new(Vec::new());
        w.write_route(
            ts,
            "192.0.2.0/24".parse().unwrap(),
            &peer(),
            &path_attrs("3356 1299 9000"),
        )
        .unwrap();
        w.write_route(
            ts,
            "198.51.100.0/24".parse().unwrap(),
            &peer(),
            &path_attrs("3356 9000"),
        )
        .unwrap();
        let bytes = w.into_inner();
        let mut reader = MrtReader::new(&bytes[..]);
        let mut decoded = Vec::new();
        while let Some(item) = reader.next().unwrap() {
            match item {
                ReadItem::Record(MrtRecord::TableDumpV1(r)) => decoded.push(r),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].sequence, 0);
        assert_eq!(decoded[1].sequence, 1);
        assert_eq!(decoded[0].prefix.to_string(), "192.0.2.0/24");
        assert_eq!(decoded[0].peer, peer());
        assert_eq!(decoded[0].attrs.as_path.to_string(), "3356 1299 9000");
    }

    #[test]
    fn v6_round_trip() {
        let ts = SimTime::from_unix(1_000_000_000);
        let p6 = PeerKey::new(Asn(6939), "2001:db8::1".parse().unwrap());
        let mut w = TableDumpWriter::new(Vec::new());
        let mut attrs = ParsedAttrs::from_path("6939 9000".parse().unwrap());
        attrs.mp_reach = Some(crate::attrs::MpReach {
            next_hop: Some("2001:db8::1".parse().unwrap()),
            nlri: vec![],
        });
        w.write_route(ts, "2001:db8::/32".parse().unwrap(), &p6, &attrs)
            .unwrap();
        let bytes = w.into_inner();
        let mut reader = MrtReader::new(&bytes[..]);
        match reader.next().unwrap().unwrap() {
            ReadItem::Record(MrtRecord::TableDumpV1(r)) => {
                assert_eq!(r.prefix.family(), Family::Ipv6);
                assert_eq!(r.peer, p6);
                assert_eq!(r.attrs, attrs);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn four_byte_asn_becomes_as_trans() {
        let ts = SimTime::from_unix(0);
        let big_peer = PeerKey::new(Asn(196_608), "10.0.0.2".parse().unwrap());
        let mut w = TableDumpWriter::new(Vec::new());
        w.write_route(
            ts,
            "192.0.2.0/24".parse().unwrap(),
            &big_peer,
            &path_attrs("3356 196608 9000"),
        )
        .unwrap();
        let bytes = w.into_inner();
        let mut reader = MrtReader::new(&bytes[..]);
        match reader.next().unwrap().unwrap() {
            ReadItem::Record(MrtRecord::TableDumpV1(r)) => {
                assert_eq!(r.peer.asn, Asn::TRANS);
                // Path attributes use 2-byte encoding: 196608 truncates on
                // the wire (the writer encodes the low 16 bits — callers
                // should strip 4-byte ASNs first for v1 output, which the
                // archive layer's pre-2005 eras never produce).
                assert_eq!(r.attrs.as_path.raw_len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_warning_not_a_panic() {
        let ts = SimTime::from_unix(0);
        let mut w = TableDumpWriter::new(Vec::new());
        w.write_route(
            ts,
            "192.0.2.0/24".parse().unwrap(),
            &peer(),
            &path_attrs("3356 9000"),
        )
        .unwrap();
        let bytes = w.into_inner();
        for cut in 13..bytes.len() {
            let mut chopped = bytes[..cut].to_vec();
            // Fix up the header length so the frame "fits".
            let new_len = (cut - 12) as u32;
            chopped[8..12].copy_from_slice(&new_len.to_be_bytes());
            let mut reader = MrtReader::new(&chopped[..]);
            match reader.next() {
                Ok(Some(ReadItem::Warning(_))) | Ok(Some(ReadItem::Record(_))) | Ok(None) => {}
                Err(_) => {}
            }
        }
    }
}
