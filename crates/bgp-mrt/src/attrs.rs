//! BGP path attribute encoding and decoding (RFC 4271 §4.3, RFC 4760).

use crate::error::DecodeError;
use crate::nlri;
use crate::wire::Cursor;
use bgp_types::{AsPath, Asn, Community, Family, Prefix, RouteOrigin, Segment};
use bytes::{BufMut, BytesMut};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Attribute type codes this crate understands.
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES (RFC 1997).
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI (RFC 4760).
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI (RFC 4760).
    pub const MP_UNREACH_NLRI: u8 = 15;
}

/// Segment type codes inside AS_PATH.
const SEG_AS_SET: u8 = 1;
const SEG_AS_SEQUENCE: u8 = 2;

/// How MP_REACH_NLRI is laid out in the surrounding record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpReachForm {
    /// Full RFC 4760 form (AFI, SAFI, next hop, reserved byte, NLRI) — used
    /// in BGP UPDATE messages.
    Full,
    /// Abbreviated RFC 6396 §4.3.4 form (next-hop length + next hop only) —
    /// used inside TABLE_DUMP_V2 RIB entries, where the prefix lives in the
    /// record header.
    Abbreviated,
}

/// MP_REACH_NLRI contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MpReach {
    /// IPv6 next hop (global scope address).
    pub next_hop: Option<Ipv6Addr>,
    /// Announced IPv6 prefixes (empty in the abbreviated RIB form).
    pub nlri: Vec<Prefix>,
}

/// The decoded path attributes of one route.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedAttrs {
    /// ORIGIN; defaults to IGP when absent.
    pub origin: RouteOrigin,
    /// AS_PATH; empty path when absent.
    pub as_path: AsPath,
    /// NEXT_HOP (IPv4).
    pub next_hop: Option<Ipv4Addr>,
    /// MULTI_EXIT_DISC.
    pub med: Option<u32>,
    /// LOCAL_PREF.
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE presence.
    pub atomic_aggregate: bool,
    /// AGGREGATOR (ASN + router id).
    pub aggregator: Option<(Asn, Ipv4Addr)>,
    /// Standard communities.
    pub communities: Vec<Community>,
    /// MP_REACH_NLRI (IPv6 announcements).
    pub mp_reach: Option<MpReach>,
    /// MP_UNREACH_NLRI (IPv6 withdrawals).
    pub mp_unreach: Option<Vec<Prefix>>,
}

impl ParsedAttrs {
    /// Builds attributes carrying just an AS path (the common case for
    /// synthesized records).
    pub fn from_path(as_path: AsPath) -> Self {
        ParsedAttrs {
            as_path,
            ..Default::default()
        }
    }
}

fn decode_as_path(cur: &mut Cursor, asn_bytes: usize) -> Result<AsPath, DecodeError> {
    let mut segments = Vec::new();
    while !cur.is_empty() {
        let seg_type = cur.u8("AS_PATH segment type")?;
        let count = cur.u8("AS_PATH segment length")? as usize;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            let asn = match asn_bytes {
                2 => cur.u16("AS_PATH ASN")? as u32,
                _ => cur.u32("AS_PATH ASN")?,
            };
            asns.push(Asn(asn));
        }
        match seg_type {
            SEG_AS_SEQUENCE => segments.push(Segment::Sequence(asns)),
            SEG_AS_SET => segments.push(Segment::Set(asns)),
            _ => {
                return Err(DecodeError::Invalid {
                    context: "AS_PATH segment type",
                })
            }
        }
    }
    Ok(AsPath::from_segments(segments))
}

fn encode_as_path(path: &AsPath, asn_bytes: usize, out: &mut BytesMut) {
    for seg in path.segments() {
        let (code, asns) = match seg {
            Segment::Sequence(v) => (SEG_AS_SEQUENCE, v),
            Segment::Set(v) => (SEG_AS_SET, v),
        };
        // BGP caps a segment at 255 ASNs; split longer ones.
        for chunk in asns.chunks(255) {
            out.put_u8(code);
            out.put_u8(chunk.len() as u8);
            for asn in chunk {
                match asn_bytes {
                    2 => out.put_u16(asn.0 as u16),
                    _ => out.put_u32(asn.0),
                }
            }
        }
    }
}

fn decode_mp_reach(cur: &mut Cursor, form: MpReachForm) -> Result<MpReach, DecodeError> {
    match form {
        MpReachForm::Full => {
            let afi = cur.u16("MP_REACH_NLRI AFI")?;
            let safi = cur.u8("MP_REACH_NLRI SAFI")?;
            if afi != 2 || safi != 1 {
                return Err(DecodeError::Invalid {
                    context: "MP_REACH_NLRI AFI/SAFI",
                });
            }
            let nh = decode_mp_next_hop(cur)?;
            cur.skip(1, "MP_REACH_NLRI reserved byte")?;
            let nlri =
                nlri::decode_prefix_run(cur, Family::Ipv6).map_err(|_| DecodeError::Invalid {
                    context: "MP_REACH_NLRI prefixes",
                })?;
            Ok(MpReach { next_hop: nh, nlri })
        }
        MpReachForm::Abbreviated => {
            let nh = decode_mp_next_hop(cur)?;
            if !cur.is_empty() {
                return Err(DecodeError::Invalid {
                    context: "MP_REACH_NLRI trailing bytes",
                });
            }
            Ok(MpReach {
                next_hop: nh,
                nlri: Vec::new(),
            })
        }
    }
}

fn decode_mp_next_hop(cur: &mut Cursor) -> Result<Option<Ipv6Addr>, DecodeError> {
    let nh_len = cur.u8("MP_REACH_NLRI next-hop length")? as usize;
    match nh_len {
        0 => Ok(None),
        16 | 32 => {
            // 32 = global + link-local; we keep the global address.
            let global = cur.u128("MP_REACH_NLRI next hop")?;
            if nh_len == 32 {
                cur.skip(16, "MP_REACH_NLRI link-local next hop")?;
            }
            Ok(Some(Ipv6Addr::from(global)))
        }
        _ => Err(DecodeError::Invalid {
            context: "MP_REACH_NLRI next-hop length",
        }),
    }
}

/// Decodes a full path-attribute block.
///
/// `asn_bytes` is 2 for legacy `BGP4MP_MESSAGE` records and 4 everywhere
/// else (TABLE_DUMP_V2 stores 4-byte ASNs unconditionally). `mp_form`
/// selects the MP_REACH layout of the surrounding record type.
///
/// A repeated attribute type is a decode error ("Duplicate Path Attribute"
/// in bgpreader terms — one of the paper's ADD-PATH corruption signatures).
pub fn decode_attrs(
    cur: &mut Cursor,
    asn_bytes: usize,
    mp_form: MpReachForm,
) -> Result<ParsedAttrs, DecodeError> {
    let mut out = ParsedAttrs::default();
    let mut seen = [false; 256];
    while !cur.is_empty() {
        let flags = cur.u8("attribute flags")?;
        let code = cur.u8("attribute type")?;
        let len = if flags & 0x10 != 0 {
            cur.u16("attribute extended length")? as usize
        } else {
            cur.u8("attribute length")? as usize
        };
        if seen[code as usize] {
            return Err(DecodeError::Invalid {
                context: "duplicate path attribute",
            });
        }
        seen[code as usize] = true;
        let mut body = cur.sub(len, "attribute body")?;
        match code {
            type_code::ORIGIN => {
                let v = body.u8("ORIGIN value")?;
                out.origin = RouteOrigin::from_code(v).ok_or(DecodeError::Invalid {
                    context: "ORIGIN value",
                })?;
            }
            type_code::AS_PATH => {
                out.as_path = decode_as_path(&mut body, asn_bytes)?;
            }
            type_code::NEXT_HOP => {
                let v = body.u32("NEXT_HOP")?;
                out.next_hop = Some(Ipv4Addr::from(v));
            }
            type_code::MED => {
                out.med = Some(body.u32("MED")?);
            }
            type_code::LOCAL_PREF => {
                out.local_pref = Some(body.u32("LOCAL_PREF")?);
            }
            type_code::ATOMIC_AGGREGATE => {
                out.atomic_aggregate = true;
            }
            type_code::AGGREGATOR => {
                let asn = match asn_bytes {
                    2 => body.u16("AGGREGATOR ASN")? as u32,
                    _ => body.u32("AGGREGATOR ASN")?,
                };
                let id = body.u32("AGGREGATOR router id")?;
                out.aggregator = Some((Asn(asn), Ipv4Addr::from(id)));
            }
            type_code::COMMUNITIES => {
                let mut communities = Vec::with_capacity(body.remaining() / 4);
                while !body.is_empty() {
                    communities.push(Community(body.u32("COMMUNITIES member")?));
                }
                out.communities = communities;
            }
            type_code::MP_REACH_NLRI => {
                out.mp_reach = Some(decode_mp_reach(&mut body, mp_form)?);
            }
            type_code::MP_UNREACH_NLRI => {
                let afi = body.u16("MP_UNREACH_NLRI AFI")?;
                let safi = body.u8("MP_UNREACH_NLRI SAFI")?;
                if afi != 2 || safi != 1 {
                    return Err(DecodeError::Invalid {
                        context: "MP_UNREACH_NLRI AFI/SAFI",
                    });
                }
                let prefixes = nlri::decode_prefix_run(&mut body, Family::Ipv6).map_err(|_| {
                    DecodeError::Invalid {
                        context: "MP_UNREACH_NLRI prefixes",
                    }
                })?;
                out.mp_unreach = Some(prefixes);
            }
            _ => {
                // Unknown attribute: skip (the body sub-cursor already
                // consumed it), as RFC 4271 requires for optional attributes.
            }
        }
    }
    Ok(out)
}

fn put_attr(out: &mut BytesMut, flags: u8, code: u8, body: &[u8]) {
    if body.len() > 255 {
        out.put_u8(flags | 0x10);
        out.put_u8(code);
        out.put_u16(body.len() as u16);
    } else {
        out.put_u8(flags);
        out.put_u8(code);
        out.put_u8(body.len() as u8);
    }
    out.put_slice(body);
}

const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_OPTIONAL_TRANSITIVE: u8 = 0xC0;
const FLAG_OPTIONAL: u8 = 0x80;

/// Encodes a path-attribute block in canonical (ascending type) order.
///
/// Identical input always yields identical bytes, which the archive layer
/// relies on for reproducible snapshots.
pub fn encode_attrs(attrs: &ParsedAttrs, asn_bytes: usize, mp_form: MpReachForm) -> BytesMut {
    let mut out = BytesMut::with_capacity(64);
    // ORIGIN is well-known mandatory: always emitted.
    put_attr(
        &mut out,
        FLAG_TRANSITIVE,
        type_code::ORIGIN,
        &[attrs.origin.code()],
    );
    let mut path_body = BytesMut::with_capacity(attrs.as_path.raw_len() * asn_bytes + 8);
    encode_as_path(&attrs.as_path, asn_bytes, &mut path_body);
    put_attr(&mut out, FLAG_TRANSITIVE, type_code::AS_PATH, &path_body);
    if let Some(nh) = attrs.next_hop {
        put_attr(
            &mut out,
            FLAG_TRANSITIVE,
            type_code::NEXT_HOP,
            &u32::from(nh).to_be_bytes(),
        );
    }
    if let Some(med) = attrs.med {
        put_attr(&mut out, FLAG_OPTIONAL, type_code::MED, &med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        put_attr(
            &mut out,
            FLAG_TRANSITIVE,
            type_code::LOCAL_PREF,
            &lp.to_be_bytes(),
        );
    }
    if attrs.atomic_aggregate {
        put_attr(&mut out, FLAG_TRANSITIVE, type_code::ATOMIC_AGGREGATE, &[]);
    }
    if let Some((asn, id)) = attrs.aggregator {
        let mut body = BytesMut::new();
        match asn_bytes {
            2 => body.put_u16(asn.0 as u16),
            _ => body.put_u32(asn.0),
        }
        body.put_u32(u32::from(id));
        put_attr(
            &mut out,
            FLAG_OPTIONAL_TRANSITIVE,
            type_code::AGGREGATOR,
            &body,
        );
    }
    if !attrs.communities.is_empty() {
        let mut body = BytesMut::with_capacity(attrs.communities.len() * 4);
        for c in &attrs.communities {
            body.put_u32(c.0);
        }
        put_attr(
            &mut out,
            FLAG_OPTIONAL_TRANSITIVE,
            type_code::COMMUNITIES,
            &body,
        );
    }
    if let Some(mp) = &attrs.mp_reach {
        let mut body = BytesMut::new();
        if mp_form == MpReachForm::Full {
            body.put_u16(2); // AFI IPv6
            body.put_u8(1); // SAFI unicast
        }
        match mp.next_hop {
            Some(nh) => {
                body.put_u8(16);
                body.put_u128(u128::from(nh));
            }
            None => body.put_u8(0),
        }
        if mp_form == MpReachForm::Full {
            body.put_u8(0); // reserved
            for p in &mp.nlri {
                nlri::encode_prefix(&mut body, *p);
            }
        }
        put_attr(&mut out, FLAG_OPTIONAL, type_code::MP_REACH_NLRI, &body);
    }
    if let Some(withdrawn) = &attrs.mp_unreach {
        let mut body = BytesMut::new();
        body.put_u16(2);
        body.put_u8(1);
        for p in withdrawn {
            nlri::encode_prefix(&mut body, *p);
        }
        put_attr(&mut out, FLAG_OPTIONAL, type_code::MP_UNREACH_NLRI, &body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn round_trip(attrs: &ParsedAttrs, asn_bytes: usize, form: MpReachForm) -> ParsedAttrs {
        let bytes = encode_attrs(attrs, asn_bytes, form);
        let mut cur = Cursor::new(bytes.freeze());
        let decoded = decode_attrs(&mut cur, asn_bytes, form).unwrap();
        assert!(cur.is_empty());
        decoded
    }

    #[test]
    fn minimal_attrs_round_trip() {
        let attrs = ParsedAttrs::from_path("3356 1299 64496".parse().unwrap());
        assert_eq!(round_trip(&attrs, 4, MpReachForm::Full), attrs);
    }

    #[test]
    fn two_byte_asn_round_trip() {
        let attrs = ParsedAttrs::from_path("3356 1299 702".parse().unwrap());
        assert_eq!(round_trip(&attrs, 2, MpReachForm::Full), attrs);
    }

    #[test]
    fn all_fields_round_trip() {
        let attrs = ParsedAttrs {
            origin: RouteOrigin::Incomplete,
            as_path: "1 2 [3 4] 5".parse().unwrap(),
            next_hop: Some(Ipv4Addr::new(192, 0, 2, 1)),
            med: Some(50),
            local_pref: Some(100),
            atomic_aggregate: true,
            aggregator: Some((Asn(65001), Ipv4Addr::new(10, 0, 0, 1))),
            communities: vec![Community::new(3257, 2990), Community::NO_EXPORT],
            mp_reach: None,
            mp_unreach: None,
        };
        assert_eq!(round_trip(&attrs, 4, MpReachForm::Full), attrs);
    }

    #[test]
    fn mp_reach_full_round_trip() {
        let attrs = ParsedAttrs {
            as_path: "6939 64500".parse().unwrap(),
            mp_reach: Some(MpReach {
                next_hop: Some("2001:db8::1".parse().unwrap()),
                nlri: vec![
                    "2001:db8::/32".parse().unwrap(),
                    "240a:a000::/20".parse().unwrap(),
                ],
            }),
            mp_unreach: Some(vec!["2001:db8:dead::/48".parse().unwrap()]),
            ..Default::default()
        };
        assert_eq!(round_trip(&attrs, 4, MpReachForm::Full), attrs);
    }

    #[test]
    fn mp_reach_abbreviated_round_trip() {
        let attrs = ParsedAttrs {
            as_path: "6939 64500".parse().unwrap(),
            mp_reach: Some(MpReach {
                next_hop: Some("2001:db8::1".parse().unwrap()),
                nlri: vec![],
            }),
            ..Default::default()
        };
        assert_eq!(round_trip(&attrs, 4, MpReachForm::Abbreviated), attrs);
    }

    #[test]
    fn long_as_path_uses_extended_length() {
        // 200 hops * 4 bytes > 255 => extended-length attribute.
        let hops: Vec<Asn> = (1..=200).map(Asn).collect();
        let attrs = ParsedAttrs::from_path(AsPath::from_asns(hops));
        assert_eq!(round_trip(&attrs, 4, MpReachForm::Full), attrs);
    }

    #[test]
    fn very_long_segment_splits_at_255() {
        let hops: Vec<Asn> = (1..=300).map(Asn).collect();
        let attrs = ParsedAttrs::from_path(AsPath::from_asns(hops.clone()));
        let decoded = round_trip(&attrs, 4, MpReachForm::Full);
        // Wire format forces a split into two sequence segments, but
        // canonical from_segments merges them back.
        assert_eq!(decoded.as_path, AsPath::from_asns(hops));
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let attrs = ParsedAttrs::from_path("1 2".parse().unwrap());
        let mut bytes = encode_attrs(&attrs, 4, MpReachForm::Full);
        let copy = bytes.clone();
        bytes.extend_from_slice(&copy); // every attribute now appears twice
        let mut cur = Cursor::new(bytes.freeze());
        let err = decode_attrs(&mut cur, 4, MpReachForm::Full).unwrap_err();
        assert_eq!(err.context(), "duplicate path attribute");
    }

    #[test]
    fn unknown_attribute_is_skipped() {
        let mut bytes = encode_attrs(
            &ParsedAttrs::from_path("1 2".parse().unwrap()),
            4,
            MpReachForm::Full,
        );
        // Append an unknown optional attribute (type 99, 3-byte body).
        bytes.put_u8(FLAG_OPTIONAL);
        bytes.put_u8(99);
        bytes.put_u8(3);
        bytes.put_slice(&[1, 2, 3]);
        let mut cur = Cursor::new(bytes.freeze());
        let decoded = decode_attrs(&mut cur, 4, MpReachForm::Full).unwrap();
        assert_eq!(decoded.as_path, "1 2".parse().unwrap());
    }

    #[test]
    fn truncated_attribute_is_an_error() {
        let bytes = encode_attrs(
            &ParsedAttrs::from_path("1 2".parse().unwrap()),
            4,
            MpReachForm::Full,
        );
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(Bytes::copy_from_slice(&bytes[..cut]));
            // Must never panic; truncations are decode errors (or, for cuts
            // landing exactly between attributes, a shorter valid block).
            let _ = decode_attrs(&mut cur, 4, MpReachForm::Full);
        }
    }

    #[test]
    fn bad_origin_value_is_rejected() {
        let mut bytes = BytesMut::new();
        put_attr(&mut bytes, FLAG_TRANSITIVE, type_code::ORIGIN, &[9]);
        let mut cur = Cursor::new(bytes.freeze());
        assert!(decode_attrs(&mut cur, 4, MpReachForm::Full).is_err());
    }

    #[test]
    fn bad_mp_afi_is_rejected() {
        let mut body = BytesMut::new();
        body.put_u16(1); // AFI v4 inside MP_REACH: not supported
        body.put_u8(1);
        body.put_u8(0);
        body.put_u8(0);
        let mut bytes = BytesMut::new();
        put_attr(&mut bytes, FLAG_OPTIONAL, type_code::MP_REACH_NLRI, &body);
        let mut cur = Cursor::new(bytes.freeze());
        let err = decode_attrs(&mut cur, 4, MpReachForm::Full).unwrap_err();
        assert!(err.context().contains("MP_REACH"));
    }
}
