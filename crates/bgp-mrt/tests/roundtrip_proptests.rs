//! Property-based round-trip tests: anything the writer emits, the reader
//! recovers exactly.

use bgp_mrt::attrs::{MpReach, ParsedAttrs};
use bgp_mrt::reader::{RibDumpReader, UpdatesReader};
use bgp_mrt::record::{PeerEntry, PeerIndexTable};
use bgp_mrt::writer::{RibDumpWriter, UpdateDumpWriter};
use bgp_types::{
    AsPath, Asn, Community, Family, Ipv4Prefix, Ipv6Prefix, Prefix, RouteAttrs, RouteOrigin,
    SimTime, UpdateRecord,
};
use proptest::prelude::*;

fn arb_asn() -> impl Strategy<Value = Asn> {
    (1u32..4_000_000_000u32).prop_map(Asn)
}

fn arb_seq_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_asn(), 1..8).prop_map(AsPath::from_asns)
}

fn arb_v4_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 8u8..=24).prop_map(|(a, l)| Prefix::V4(Ipv4Prefix::new_masked(a, l).unwrap()))
}

fn arb_v6_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 16u8..=48).prop_map(|(a, l)| Prefix::V6(Ipv6Prefix::new_masked(a, l).unwrap()))
}

fn arb_communities() -> impl Strategy<Value = Vec<Community>> {
    prop::collection::vec(
        (any::<u16>(), any::<u16>()).prop_map(|(a, v)| Community::new(a, v)),
        0..4,
    )
}

fn dedup_sorted(mut v: Vec<Prefix>) -> Vec<Prefix> {
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn updates_round_trip(
        peer_asn in arb_asn(),
        path in arb_seq_path(),
        announced4 in prop::collection::vec(arb_v4_prefix(), 0..20),
        withdrawn4 in prop::collection::vec(arb_v4_prefix(), 0..10),
        announced6 in prop::collection::vec(arb_v6_prefix(), 0..20),
        communities in arb_communities(),
        ts in 0u64..4_000_000_000u64,
    ) {
        // Writer splits by family and never re-mixes, so prefix sets must be
        // disjoint within each family list for exact comparison; dedup.
        let announced4 = dedup_sorted(announced4);
        let withdrawn4 = dedup_sorted(withdrawn4);
        let announced6 = dedup_sorted(announced6);
        let mut announced = announced4.clone();
        announced.extend(announced6.iter().copied());
        let rec = UpdateRecord {
            timestamp: SimTime::from_unix(ts),
            peer: bgp_types::PeerKey::new(peer_asn, "10.1.2.3".parse().unwrap()),
            announced,
            withdrawn: withdrawn4.clone(),
            attrs: RouteAttrs {
                path: path.clone(),
                origin: RouteOrigin::Igp,
                communities: communities.clone(),
            },
        };
        if rec.is_empty() {
            return Ok(());
        }
        let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
        w.write_update(&rec).unwrap();
        let (updates, warnings) = UpdatesReader::read_all(&w.into_inner()[..]).unwrap();
        prop_assert!(warnings.is_empty(), "{warnings:?}");
        let mut got_announced = Vec::new();
        let mut got_withdrawn = Vec::new();
        for u in &updates {
            prop_assert_eq!(u.peer.asn, peer_asn);
            prop_assert_eq!(u.timestamp.unix(), ts);
            if !u.announced.is_empty() {
                prop_assert_eq!(&u.attrs.path, &path);
                prop_assert_eq!(&u.attrs.communities, &communities);
            }
            got_announced.extend(u.announced.iter().copied());
            got_withdrawn.extend(u.withdrawn.iter().copied());
        }
        let mut want_announced = announced4;
        want_announced.extend(announced6.iter().copied());
        prop_assert_eq!(dedup_sorted(got_announced), dedup_sorted(want_announced));
        prop_assert_eq!(dedup_sorted(got_withdrawn), withdrawn4);
    }

    #[test]
    fn rib_dump_round_trips(
        n_peers in 1usize..12,
        routes in prop::collection::vec(
            (arb_v4_prefix(), prop::collection::vec(arb_seq_path(), 1..6)),
            1..30,
        ),
        ts in 0u64..4_000_000_000u64,
    ) {
        let ts = SimTime::from_unix(ts);
        let table = PeerIndexTable {
            collector_bgp_id: 99,
            view_name: String::new(),
            peers: (0..n_peers)
                .map(|i| PeerEntry {
                    bgp_id: i as u32,
                    addr: format!("10.0.{}.{}", i / 250, (i % 250) + 1).parse().unwrap(),
                    asn: Asn(1000 + i as u32),
                })
                .collect(),
        };
        let mut w = RibDumpWriter::new(Vec::new());
        w.write_peer_table(ts, &table).unwrap();
        let mut expected = Vec::new();
        for (prefix, paths) in &routes {
            let entries: Vec<(u16, ParsedAttrs)> = paths
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let idx = (i % n_peers) as u16;
                    (idx, ParsedAttrs::from_path(p.clone()))
                })
                .collect();
            w.write_route(ts, *prefix, &entries).unwrap();
            expected.push((*prefix, entries));
        }
        let dump = RibDumpReader::read_all(&w.into_inner()[..]).unwrap();
        prop_assert!(dump.warnings.is_empty(), "{:?}", dump.warnings);
        prop_assert_eq!(dump.table.peers.len(), n_peers);
        prop_assert_eq!(dump.routes.len(), expected.len());
        for (rec, (prefix, entries)) in dump.routes.iter().zip(&expected) {
            prop_assert_eq!(rec.prefix, *prefix);
            prop_assert_eq!(rec.entries.len(), entries.len());
            for (got, (idx, attrs)) in rec.entries.iter().zip(entries) {
                prop_assert_eq!(got.peer_index, *idx);
                prop_assert_eq!(&got.attrs.as_path, &attrs.as_path);
            }
        }
    }

    #[test]
    fn v6_rib_with_mp_reach_round_trips(
        prefix in arb_v6_prefix(),
        path in arb_seq_path(),
        nh in any::<u128>(),
    ) {
        let ts = SimTime::from_unix(1_000_000);
        let table = PeerIndexTable {
            collector_bgp_id: 1,
            view_name: String::new(),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: "2001:db8::1".parse().unwrap(),
                asn: Asn(6939),
            }],
        };
        let mut attrs = ParsedAttrs::from_path(path.clone());
        attrs.mp_reach = Some(MpReach {
            next_hop: Some(std::net::Ipv6Addr::from(nh)),
            nlri: vec![], // abbreviated form inside RIB entries
        });
        let mut w = RibDumpWriter::new(Vec::new());
        w.write_peer_table(ts, &table).unwrap();
        w.write_route(ts, prefix, &[(0, attrs.clone())]).unwrap();
        let dump = RibDumpReader::read_all(&w.into_inner()[..]).unwrap();
        prop_assert!(dump.warnings.is_empty(), "{:?}", dump.warnings);
        prop_assert_eq!(dump.routes[0].prefix.family(), Family::Ipv6);
        prop_assert_eq!(&dump.routes[0].entries[0].attrs, &attrs);
    }
}
