//! Fault-injection tests: the tolerant reader must never panic, whatever
//! bytes it is fed, and must recover everything recoverable.
//!
//! The second half of this file maintains the checked-in corrupted-MRT
//! regression corpus (`tests/corpus/*.mrt`): one file per failure class,
//! each built deterministically by mutating valid writer output, with the
//! exact expected warning-slug counts and recovery accounting pinned.
//! Regenerate with `PA_REGEN_CORPUS=1 cargo test -p bgp-mrt --test
//! fault_injection` after an intentional writer or corpus change.

use bgp_mrt::attrs::ParsedAttrs;
use bgp_mrt::reader::{IngestStats, MrtReader, RecoveryPolicy, RibDumpReader, UpdatesReader};
use bgp_mrt::record::{PeerEntry, PeerIndexTable};
use bgp_mrt::writer::{CorruptionMode, RibDumpWriter, UpdateDumpWriter};
use bgp_mrt::MrtError;
use bgp_types::{Asn, PeerKey, Prefix, RouteAttrs, SimTime, UpdateRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn sample_updates_file() -> Vec<u8> {
    let peer = PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap());
    let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
    for i in 0..20u32 {
        let rec = UpdateRecord::announce(
            SimTime::from_unix(1000 + i as u64),
            peer,
            vec![
                Prefix::v4((10 << 24) | (i << 8), 24).unwrap(),
                Prefix::v6((0x2001_0db8u128 << 96) | ((i as u128) << 80), 48).unwrap(),
            ],
            RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
        );
        w.write_update(&rec).unwrap();
    }
    w.into_inner()
}

fn sample_rib_file() -> Vec<u8> {
    let ts = SimTime::from_unix(5000);
    let table = PeerIndexTable {
        collector_bgp_id: 7,
        view_name: "test".into(),
        peers: (0..4)
            .map(|i| PeerEntry {
                bgp_id: i,
                addr: format!("10.0.0.{}", i + 1).parse().unwrap(),
                asn: Asn(100 + i),
            })
            .collect(),
    };
    let mut w = RibDumpWriter::new(Vec::new());
    w.write_peer_table(ts, &table).unwrap();
    for i in 0..50u32 {
        let entries: Vec<(u16, ParsedAttrs)> = (0..4u16)
            .map(|p| {
                (
                    p,
                    ParsedAttrs::from_path(
                        format!("{} 1299 {}", 100 + p, 64496 + i).parse().unwrap(),
                    ),
                )
            })
            .collect();
        w.write_route(ts, Prefix::v4((10 << 24) | (i << 8), 24).unwrap(), &entries)
            .unwrap();
    }
    w.into_inner()
}

/// Every truncation point of a valid stream must be handled without panic,
/// and every record fully before the cut must still decode.
#[test]
fn truncation_never_panics() {
    for file in [sample_updates_file(), sample_rib_file()] {
        for cut in (0..file.len()).step_by(7) {
            let mut reader = MrtReader::new(&file[..cut]);
            while let Ok(Some(_)) = reader.next() {}
        }
    }
}

/// Single-byte corruption anywhere in the stream must be handled without
/// panic. (Corrupting length fields can make the reader mis-frame the rest
/// of the stream — that is fine, it must just fail cleanly.)
#[test]
fn bit_flips_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for file in [sample_updates_file(), sample_rib_file()] {
        for _ in 0..400 {
            let mut corrupted = file.clone();
            let pos = rng.random_range(0..corrupted.len());
            let bit = 1u8 << rng.random_range(0..8);
            corrupted[pos] ^= bit;
            // Cap protects against corrupt length fields demanding huge
            // allocations; use a small cap so the test is fast.
            let mut reader = MrtReader::with_cap(&corrupted[..], 1 << 20);
            let mut steps = 0;
            loop {
                match reader.next() {
                    Ok(Some(_)) if steps < 10_000 => steps += 1,
                    _ => break,
                }
            }
        }
    }
}

/// Random garbage must be handled without panic.
#[test]
fn random_garbage_never_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..200 {
        let len = rng.random_range(0..4096);
        let garbage: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        let mut reader = MrtReader::with_cap(&garbage[..], 1 << 20);
        let mut steps = 0;
        loop {
            match reader.next() {
                Ok(Some(_)) if steps < 10_000 => steps += 1,
                _ => break,
            }
        }
    }
}

/// A corrupt record in the middle must not take down neighbours: MRT framing
/// is length-delimited, so records after a body-corrupted record survive.
#[test]
fn body_corruption_is_contained() {
    let file = sample_updates_file();
    // Locate the second record's body region: header is 12 bytes; first
    // record body length lives at bytes 8..12.
    let first_len = u32::from_be_bytes([file[8], file[9], file[10], file[11]]) as usize;
    let second_start = 12 + first_len;
    // Corrupt one byte inside the *body* of record 2 (skip its 12-byte
    // header so framing stays intact). Choosing +20 lands in the BGP
    // message region.
    let mut corrupted = file.clone();
    corrupted[second_start + 12 + 20] ^= 0xFF;
    let (updates, _warnings) = UpdatesReader::read_all(&corrupted[..]).unwrap();
    // 20 updates written; at most one lost to corruption.
    assert!(updates.len() >= 19, "got {}", updates.len());
}

/// Corruptions that are fatal to a strict read must be survivable in
/// recovery mode: on in-memory bytes — where real I/O errors cannot happen
/// — an uncapped recovering read must *never* return an error, whatever
/// the damage.
#[test]
fn recovery_reads_never_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for file in [sample_updates_file(), sample_rib_file()] {
        for cut in (0..file.len()).step_by(7) {
            let mut reader =
                MrtReader::with_policy_and_cap(&file[..cut], RecoveryPolicy::Recover, 1 << 20);
            while reader.next().expect("recovery read failed").is_some() {}
        }
        for _ in 0..200 {
            let mut corrupted = file.clone();
            let pos = rng.random_range(0..corrupted.len());
            corrupted[pos] ^= 1u8 << rng.random_range(0..8);
            let mut reader =
                MrtReader::with_policy_and_cap(&corrupted[..], RecoveryPolicy::Recover, 1 << 20);
            let mut steps = 0;
            while reader.next().expect("recovery read failed").is_some() {
                steps += 1;
                assert!(steps < 100_000, "reader failed to terminate");
            }
        }
    }
}

/// Reading a RIB file with the updates reader (and vice versa) must produce
/// warnings, not panics or phantom data.
#[test]
fn cross_reading_is_safe() {
    let rib = sample_rib_file();
    let (updates, warnings) = UpdatesReader::read_all(&rib[..]).unwrap();
    assert!(updates.is_empty());
    assert_eq!(warnings.len(), 51); // table + 50 routes, all flagged

    let upd = sample_updates_file();
    let dump = RibDumpReader::read_all(&upd[..]).unwrap();
    assert!(dump.routes.is_empty());
    assert!(!dump.warnings.is_empty());
}

// ---------------------------------------------------------------------------
// The checked-in corrupted-MRT regression corpus.
// ---------------------------------------------------------------------------

/// Self-contained deterministic position source for the corpus builder.
/// Deliberately not the `rand` crate: corpus bytes must not depend on which
/// rand implementation (real or vendor stub) built them.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `n` well-formed BGP4MP update records (one prefix each).
fn valid_records(n: usize) -> Vec<u8> {
    let peer = PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap());
    let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
    for i in 0..n as u32 {
        let rec = UpdateRecord::announce(
            SimTime::from_unix(2000 + i as u64),
            peer,
            vec![Prefix::v4((10 << 24) | ((i + 1) << 8), 24).unwrap()],
            RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
        );
        w.write_update(&rec).unwrap();
    }
    w.into_inner()
}

/// Byte offset where record `i` (zero-based) starts in a valid stream.
fn record_start(bytes: &[u8], i: usize) -> usize {
    let mut off = 0;
    for _ in 0..i {
        let len = u32::from_be_bytes([
            bytes[off + 8],
            bytes[off + 9],
            bytes[off + 10],
            bytes[off + 11],
        ]) as usize;
        off += 12 + len;
    }
    off
}

/// One record produced through the writer's deliberate-corruption path.
fn corrupted_record(mode: CorruptionMode) -> Vec<u8> {
    let peer = PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap());
    let rec = UpdateRecord::announce(
        SimTime::from_unix(2100),
        peer,
        vec![Prefix::v4(10 << 24, 24).unwrap()],
        RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
    );
    let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
    w.write_corrupted(&rec, mode).unwrap();
    w.into_inner()
}

/// Builds the corpus: `(file name, bytes)` per failure class, every byte a
/// deterministic function of this code.
fn build_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let mut seed = SplitMix64(0x1A6E_57ED);
    let mut corpus = Vec::new();

    // Seeded byte truncation: the stream ends inside a record header.
    let mut bytes = valid_records(3);
    let tail_header = valid_records(4)[record_start(&valid_records(4), 3)..].to_vec();
    let keep = 1 + (seed.next() % 11) as usize; // 1..=11 header bytes
    bytes.extend_from_slice(&tail_header[..keep]);
    corpus.push(("truncated_header.mrt", bytes));

    // Seeded byte truncation: the stream ends inside a record body.
    let whole = valid_records(4);
    let last = record_start(&whole, 3);
    let body_len = whole.len() - last - 12;
    let keep = 1 + (seed.next() % (body_len as u64 - 1)) as usize; // 1..body_len
    corpus.push(("truncated_body.mrt", whole[..last + 12 + keep].to_vec()));

    // Length-field corruption: a header declaring a gigabyte, in front of
    // two records that must be recovered by resynchronization.
    let three = valid_records(3);
    let second = record_start(&three, 1);
    let mut bytes = three[..second].to_vec();
    bytes.extend_from_slice(&0xFFFF_FFFFu32.to_be_bytes());
    bytes.extend_from_slice(&16u16.to_be_bytes());
    bytes.extend_from_slice(&4u16.to_be_bytes());
    bytes.extend_from_slice(&(1u32 << 30).to_be_bytes());
    bytes.extend_from_slice(&three[second..]);
    corpus.push(("oversized_record.mrt", bytes));

    // The writer's three deliberate corruption modes, each sandwiched
    // between valid records (decode-level failures, not framing failures).
    for (name, mode) in [
        ("unknown_subtype.mrt", CorruptionMode::AddPathSubtype),
        (
            "duplicate_attribute.mrt",
            CorruptionMode::DuplicateAttribute,
        ),
        ("invalid_mp_reach.mrt", CorruptionMode::InvalidMpReach),
    ] {
        let two = valid_records(2);
        let second = record_start(&two, 1);
        let mut bytes = two[..second].to_vec();
        bytes.extend_from_slice(&corrupted_record(mode));
        bytes.extend_from_slice(&two[second..]);
        corpus.push((name, bytes));
    }

    // Marker corruption: one byte of the second record's 16-byte BGP
    // marker zeroed. The AS4 v4-session preamble is 20 bytes, so the
    // marker spans body offsets 20..36.
    let mut bytes = valid_records(2);
    let second = record_start(&bytes, 1);
    let flip = 20 + (seed.next() % 16) as usize;
    bytes[second + 12 + flip] = 0x00;
    corpus.push(("bad_marker.mrt", bytes));

    // Attribute splicing: the second record's attribute-block length claims
    // bytes past the end of its BGP message, so the attribute region no
    // longer lines up with the message that carries it. The length field
    // sits after the 20-byte preamble, 16-byte marker, message length (2),
    // type (1), and the empty withdrawn block (2): body offset 41.
    let mut bytes = valid_records(2);
    let second = record_start(&bytes, 1);
    let attr_len_at = second + 12 + 41;
    let attr_len = u16::from_be_bytes([bytes[attr_len_at], bytes[attr_len_at + 1]]);
    let overshoot = attr_len + 100 + (seed.next() % 100) as u16;
    bytes[attr_len_at..attr_len_at + 2].copy_from_slice(&overshoot.to_be_bytes());
    corpus.push(("spliced_attributes.mrt", bytes));

    corpus
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The corpus on disk must be byte-identical to what the builder produces.
/// Set `PA_REGEN_CORPUS=1` to rewrite the files after an intentional change.
#[test]
fn corpus_files_match_builder() {
    let dir = corpus_dir();
    if std::env::var_os("PA_REGEN_CORPUS").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, bytes) in build_corpus() {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
        return;
    }
    for (name, bytes) in build_corpus() {
        let on_disk = std::fs::read(dir.join(name)).unwrap_or_else(|e| {
            panic!("corpus file {name} unreadable ({e}); regenerate with PA_REGEN_CORPUS=1")
        });
        assert_eq!(on_disk, bytes, "{name} diverges from its builder");
    }
}

/// What a recovering read of one corpus file must produce.
struct Expected {
    name: &'static str,
    records: usize,
    /// Exact warning-slug counts.
    slugs: &'static [(&'static str, u64)],
    stats: IngestStats,
    /// Whether a strict read survives this file (decode-level damage) or
    /// aborts (framing damage).
    strict_ok: bool,
}

fn expectations() -> Vec<Expected> {
    vec![
        Expected {
            name: "truncated_header.mrt",
            records: 3,
            slugs: &[("truncated_header", 1)],
            stats: IngestStats {
                recovered_records: 1,
                skipped_bytes: 3,
            },
            strict_ok: false,
        },
        Expected {
            name: "truncated_body.mrt",
            records: 3,
            slugs: &[("truncated_body", 1)],
            stats: IngestStats {
                recovered_records: 1,
                skipped_bytes: 55,
            },
            strict_ok: false,
        },
        Expected {
            name: "oversized_record.mrt",
            records: 3,
            slugs: &[("oversized_record", 1)],
            stats: IngestStats {
                recovered_records: 1,
                skipped_bytes: 12,
            },
            strict_ok: false,
        },
        Expected {
            name: "unknown_subtype.mrt",
            records: 2,
            slugs: &[("unknown_subtype", 1)],
            stats: IngestStats::default(),
            strict_ok: true,
        },
        Expected {
            name: "duplicate_attribute.mrt",
            records: 2,
            slugs: &[("duplicate_path_attribute", 1)],
            stats: IngestStats::default(),
            strict_ok: true,
        },
        Expected {
            name: "invalid_mp_reach.mrt",
            records: 2,
            slugs: &[("invalid_mp_reach_nlri", 1)],
            stats: IngestStats::default(),
            strict_ok: true,
        },
        Expected {
            name: "bad_marker.mrt",
            records: 1,
            slugs: &[("bad_marker", 1)],
            stats: IngestStats::default(),
            strict_ok: true,
        },
        Expected {
            name: "spliced_attributes.mrt",
            records: 1,
            slugs: &[("decode", 1)],
            stats: IngestStats::default(),
            strict_ok: true,
        },
    ]
}

/// Every corpus file, read with `RecoveryPolicy::Recover`, must produce
/// exactly the pinned record count, warning-slug counts, and recovery
/// accounting.
#[test]
fn corpus_recovery_outcomes_are_pinned() {
    let corpus: BTreeMap<_, _> = build_corpus().into_iter().collect();
    let expectations = expectations();
    assert_eq!(corpus.len(), expectations.len(), "one expectation per file");
    for exp in expectations {
        let bytes = &corpus[exp.name];
        let (updates, warnings, stats) =
            UpdatesReader::read_all_with_policy(&bytes[..], RecoveryPolicy::Recover)
                .unwrap_or_else(|e| panic!("{}: recovery read failed: {e}", exp.name));
        assert_eq!(updates.len(), exp.records, "{}: record count", exp.name);
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for w in &warnings {
            *counts.entry(w.kind.slug()).or_default() += 1;
        }
        let expected: BTreeMap<&str, u64> = exp.slugs.iter().copied().collect();
        assert_eq!(counts, expected, "{}: warning-slug counts", exp.name);
        assert_eq!(stats, exp.stats, "{}: recovery accounting", exp.name);
    }
}

/// Strict reads must keep today's behaviour on every corpus file: framing
/// damage aborts, decode-level damage yields the same records and warnings
/// a recovering read does.
#[test]
fn corpus_strict_outcomes_are_preserved() {
    let corpus: BTreeMap<_, _> = build_corpus().into_iter().collect();
    for exp in expectations() {
        let bytes = &corpus[exp.name];
        let strict = UpdatesReader::read_all(&bytes[..]);
        if !exp.strict_ok {
            assert!(strict.is_err(), "{}: strict read must fail", exp.name);
            continue;
        }
        let (updates, warnings) = strict.unwrap();
        let (r_updates, r_warnings, _) =
            UpdatesReader::read_all_with_policy(&bytes[..], RecoveryPolicy::Recover).unwrap();
        assert_eq!(updates.len(), r_updates.len(), "{}", exp.name);
        assert_eq!(warnings, r_warnings, "{}", exp.name);
    }
}

/// The capped policy must abort on a file damaged past its budget and
/// behave exactly like `Recover` when the budget is not reached.
#[test]
fn recover_with_cap_budgets_the_corpus() {
    let corpus: BTreeMap<_, _> = build_corpus().into_iter().collect();
    let oversized = &corpus["oversized_record.mrt"];
    let err = UpdatesReader::read_all_with_policy(
        &oversized[..],
        RecoveryPolicy::RecoverWithCap {
            max_skipped_bytes: 4,
        },
    )
    .unwrap_err();
    assert!(matches!(err, MrtError::SkipBudgetExhausted { cap: 4, .. }));

    let (updates, warnings, stats) = UpdatesReader::read_all_with_policy(
        &oversized[..],
        RecoveryPolicy::recover_with_default_cap(),
    )
    .unwrap();
    let (r_updates, r_warnings, r_stats) =
        UpdatesReader::read_all_with_policy(&oversized[..], RecoveryPolicy::Recover).unwrap();
    assert_eq!(updates, r_updates);
    assert_eq!(warnings, r_warnings);
    assert_eq!(stats, r_stats);
}
