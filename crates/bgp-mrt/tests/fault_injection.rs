//! Fault-injection tests: the tolerant reader must never panic, whatever
//! bytes it is fed, and must recover everything recoverable.

use bgp_mrt::attrs::ParsedAttrs;
use bgp_mrt::reader::{MrtReader, RibDumpReader, UpdatesReader};
use bgp_mrt::record::{PeerEntry, PeerIndexTable};
use bgp_mrt::writer::{RibDumpWriter, UpdateDumpWriter};
use bgp_types::{Asn, PeerKey, Prefix, RouteAttrs, SimTime, UpdateRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn sample_updates_file() -> Vec<u8> {
    let peer = PeerKey::new(Asn(3356), "10.0.0.1".parse().unwrap());
    let mut w = UpdateDumpWriter::new(Vec::new(), Asn(12654), "198.51.100.1".parse().unwrap());
    for i in 0..20u32 {
        let rec = UpdateRecord::announce(
            SimTime::from_unix(1000 + i as u64),
            peer,
            vec![
                Prefix::v4((10 << 24) | (i << 8), 24).unwrap(),
                Prefix::v6((0x2001_0db8u128 << 96) | ((i as u128) << 80), 48).unwrap(),
            ],
            RouteAttrs::from_path("3356 1299 64496".parse().unwrap()),
        );
        w.write_update(&rec).unwrap();
    }
    w.into_inner()
}

fn sample_rib_file() -> Vec<u8> {
    let ts = SimTime::from_unix(5000);
    let table = PeerIndexTable {
        collector_bgp_id: 7,
        view_name: "test".into(),
        peers: (0..4)
            .map(|i| PeerEntry {
                bgp_id: i,
                addr: format!("10.0.0.{}", i + 1).parse().unwrap(),
                asn: Asn(100 + i),
            })
            .collect(),
    };
    let mut w = RibDumpWriter::new(Vec::new());
    w.write_peer_table(ts, &table).unwrap();
    for i in 0..50u32 {
        let entries: Vec<(u16, ParsedAttrs)> = (0..4u16)
            .map(|p| {
                (
                    p,
                    ParsedAttrs::from_path(
                        format!("{} 1299 {}", 100 + p, 64496 + i).parse().unwrap(),
                    ),
                )
            })
            .collect();
        w.write_route(ts, Prefix::v4((10 << 24) | (i << 8), 24).unwrap(), &entries)
            .unwrap();
    }
    w.into_inner()
}

/// Every truncation point of a valid stream must be handled without panic,
/// and every record fully before the cut must still decode.
#[test]
fn truncation_never_panics() {
    for file in [sample_updates_file(), sample_rib_file()] {
        for cut in (0..file.len()).step_by(7) {
            let mut reader = MrtReader::new(&file[..cut]);
            while let Ok(Some(_)) = reader.next() {}
        }
    }
}

/// Single-byte corruption anywhere in the stream must be handled without
/// panic. (Corrupting length fields can make the reader mis-frame the rest
/// of the stream — that is fine, it must just fail cleanly.)
#[test]
fn bit_flips_never_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for file in [sample_updates_file(), sample_rib_file()] {
        for _ in 0..400 {
            let mut corrupted = file.clone();
            let pos = rng.random_range(0..corrupted.len());
            let bit = 1u8 << rng.random_range(0..8);
            corrupted[pos] ^= bit;
            // Cap protects against corrupt length fields demanding huge
            // allocations; use a small cap so the test is fast.
            let mut reader = MrtReader::with_cap(&corrupted[..], 1 << 20);
            let mut steps = 0;
            loop {
                match reader.next() {
                    Ok(Some(_)) if steps < 10_000 => steps += 1,
                    _ => break,
                }
            }
        }
    }
}

/// Random garbage must be handled without panic.
#[test]
fn random_garbage_never_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..200 {
        let len = rng.random_range(0..4096);
        let garbage: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        let mut reader = MrtReader::with_cap(&garbage[..], 1 << 20);
        let mut steps = 0;
        loop {
            match reader.next() {
                Ok(Some(_)) if steps < 10_000 => steps += 1,
                _ => break,
            }
        }
    }
}

/// A corrupt record in the middle must not take down neighbours: MRT framing
/// is length-delimited, so records after a body-corrupted record survive.
#[test]
fn body_corruption_is_contained() {
    let file = sample_updates_file();
    // Locate the second record's body region: header is 12 bytes; first
    // record body length lives at bytes 8..12.
    let first_len = u32::from_be_bytes([file[8], file[9], file[10], file[11]]) as usize;
    let second_start = 12 + first_len;
    // Corrupt one byte inside the *body* of record 2 (skip its 12-byte
    // header so framing stays intact). Choosing +20 lands in the BGP
    // message region.
    let mut corrupted = file.clone();
    corrupted[second_start + 12 + 20] ^= 0xFF;
    let (updates, _warnings) = UpdatesReader::read_all(&corrupted[..]).unwrap();
    // 20 updates written; at most one lost to corruption.
    assert!(updates.len() >= 19, "got {}", updates.len());
}

/// Reading a RIB file with the updates reader (and vice versa) must produce
/// warnings, not panics or phantom data.
#[test]
fn cross_reading_is_safe() {
    let rib = sample_rib_file();
    let (updates, warnings) = UpdatesReader::read_all(&rib[..]).unwrap();
    assert!(updates.is_empty());
    assert_eq!(warnings.len(), 51); // table + 50 routes, all flagged

    let upd = sample_updates_file();
    let dump = RibDumpReader::read_all(&upd[..]).unwrap();
    assert!(dump.routes.is_empty());
    assert!(!dump.warnings.is_empty());
}
