//! Error type for fallible construction and parsing of BGP domain types.

use std::fmt;

/// Errors produced when constructing or parsing BGP domain types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A prefix length exceeded the maximum for its address family.
    PrefixLenOutOfRange {
        /// The offending length.
        len: u8,
        /// The maximum valid length (32 for IPv4, 128 for IPv6).
        max: u8,
    },
    /// A prefix had host bits set beyond its prefix length.
    HostBitsSet,
    /// A string failed to parse as the indicated type.
    Parse {
        /// Human-readable name of the target type.
        what: &'static str,
        /// The input that failed to parse.
        input: String,
    },
    /// An AS path operation required a non-empty path.
    EmptyPath,
    /// An AS-SET with more than one member cannot be expanded.
    AmbiguousSet,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::PrefixLenOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            TypeError::HostBitsSet => {
                write!(f, "prefix has host bits set beyond its length")
            }
            TypeError::Parse { what, input } => {
                write!(f, "cannot parse {input:?} as {what}")
            }
            TypeError::EmptyPath => write!(f, "AS path is empty"),
            TypeError::AmbiguousSet => {
                write!(f, "AS-SET with more than one member cannot be expanded")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TypeError::PrefixLenOutOfRange { len: 33, max: 32 };
        assert_eq!(e.to_string(), "prefix length 33 exceeds maximum 32");
        let e = TypeError::Parse {
            what: "Asn",
            input: "xyz".into(),
        };
        assert!(e.to_string().contains("Asn"));
        assert!(e.to_string().contains("xyz"));
        assert!(TypeError::HostBitsSet.to_string().contains("host bits"));
        assert!(TypeError::EmptyPath.to_string().contains("empty"));
        assert!(TypeError::AmbiguousSet.to_string().contains("AS-SET"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<TypeError>();
    }
}
