//! Standard BGP communities (RFC 1997).

use crate::asn::Asn;
use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A standard 32-bit BGP community, displayed as `asn:value`.
///
/// The paper (§4.3) discusses communities as one driver of intermediate-AS
/// policy: e.g. GTT's `3257:2990` ("do not announce in North America") and
/// prepend-steering values. The simulator attaches communities to
/// announcements whose transit treatment is community-driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// Well-known NO_EXPORT (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// Well-known NO_ADVERTISE (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// Well-known NO_EXPORT_SUBCONFED (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);

    /// Builds a community from its `asn:value` halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits, conventionally the ASN defining the community.
    pub fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits, the ASN-defined action/annotation value.
    pub fn value_part(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// The defining ASN as an [`Asn`].
    pub fn asn(self) -> Asn {
        Asn(self.asn_part() as u32)
    }

    /// Returns `true` for the RFC 1997 well-known range (`0xFFFF0000`+).
    pub fn is_well_known(self) -> bool {
        self.0 >= 0xFFFF_0000
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

impl FromStr for Community {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TypeError::Parse {
            what: "Community",
            input: s.to_string(),
        };
        let (a, v) = s.split_once(':').ok_or_else(err)?;
        let a: u16 = a.parse().map_err(|_| err())?;
        let v: u16 = v.parse().map_err(|_| err())?;
        Ok(Community::new(a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_round_trip() {
        let c = Community::new(3257, 2990);
        assert_eq!(c.asn_part(), 3257);
        assert_eq!(c.value_part(), 2990);
        assert_eq!(c.asn(), Asn(3257));
        assert_eq!(c.to_string(), "3257:2990");
    }

    #[test]
    fn parse_round_trip() {
        let c: Community = "5511:666".parse().unwrap();
        assert_eq!(c, Community::new(5511, 666));
        assert!("5511".parse::<Community>().is_err());
        assert!("5511:x".parse::<Community>().is_err());
        assert!("99999:1".parse::<Community>().is_err());
    }

    #[test]
    fn well_known_values() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::NO_ADVERTISE.is_well_known());
        assert!(Community::NO_EXPORT_SUBCONFED.is_well_known());
        assert!(!Community::new(3257, 2990).is_well_known());
        assert_eq!(Community::NO_EXPORT.to_string(), "65535:65281");
    }

    #[test]
    fn ordering_matches_numeric() {
        let a = Community::new(1, 2);
        let b = Community::new(1, 3);
        let c = Community::new(2, 0);
        assert!(a < b && b < c);
    }
}
