//! Interned columnar snapshot store.
//!
//! The analysis stack historically passed owned `(Prefix, AsPath)` pairs
//! between every layer, cloning a heap-allocated path per prefix per peer
//! and re-hashing the same paths in each stage. This module provides the
//! shared alternative: append-only, hash-consed arenas ([`PrefixTable`],
//! [`PathTable`]) issuing dense [`PrefixId`]/[`PathId`] handles, owned
//! together by a [`SnapshotStore`] that a whole snapshot ladder can share
//! so consecutive snapshots reference the same interned paths.
//!
//! # Determinism
//!
//! Ids are assigned in **first-insertion order**: interning the same
//! sequence of values into a fresh store always yields the same ids. Every
//! consumer that needs byte-identical serialized output (at any thread
//! count) interns at a deterministic serial point and only *reads* the
//! store from worker threads.
//!
//! # Boundary rules
//!
//! Ids are meaningful only relative to the store that issued them. Two
//! stores are the *same* exactly when [`SnapshotStore::same`] says so;
//! comparing or mixing ids across different stores is a logic error.
//! Conversions to and from owned values happen at the edges — snapshot
//! ingestion interns, reporting resolves.

use crate::as_path::AsPath;
use crate::asn::Asn;
use crate::prefix::Prefix;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard};

pub mod persist;

/// Dense handle into a [`SnapshotStore`]'s prefix arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixId(pub u32);

/// Dense handle into a [`SnapshotStore`]'s path arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

/// Append-only, hash-consed arena of [`Prefix`] values.
#[derive(Debug, Default)]
pub struct PrefixTable {
    items: Vec<Prefix>,
    index: HashMap<Prefix, u32>,
}

impl PrefixTable {
    /// Interns `prefix`, returning its id and whether it was already
    /// present. Ids are issued densely in first-insertion order.
    pub fn intern(&mut self, prefix: Prefix) -> (PrefixId, bool) {
        match self.index.get(&prefix) {
            Some(&id) => (PrefixId(id), true),
            None => {
                let id = self.items.len() as u32;
                self.items.push(prefix);
                self.index.insert(prefix, id);
                (PrefixId(id), false)
            }
        }
    }

    /// The id of an already-interned prefix, if any.
    pub fn lookup(&self, prefix: Prefix) -> Option<PrefixId> {
        self.index.get(&prefix).copied().map(PrefixId)
    }

    /// Resolves an id to its prefix.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this table.
    pub fn get(&self, id: PrefixId) -> Prefix {
        self.items[id.0 as usize]
    }

    /// Number of interned prefixes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Estimated heap bytes held by the interned prefixes (the arena's
    /// item vector; the lookup index roughly doubles this but is a
    /// rebuildable acceleration structure, not payload).
    pub fn bytes_est(&self) -> usize {
        self.items.len() * std::mem::size_of::<Prefix>()
    }
}

/// Append-only, hash-consed arena of [`AsPath`] values, with the origin AS
/// of each path cached at interning time.
#[derive(Debug, Default)]
pub struct PathTable {
    items: Vec<AsPath>,
    index: HashMap<AsPath, u32>,
    origins: Vec<Option<Asn>>,
    bytes_est: usize,
}

impl PathTable {
    /// Interns `path`, returning its id and whether it was already present.
    /// Ids are issued densely in first-insertion order.
    pub fn intern(&mut self, path: &AsPath) -> (PathId, bool) {
        match self.index.get(path) {
            Some(&id) => (PathId(id), true),
            None => {
                let id = self.items.len() as u32;
                self.bytes_est += path_bytes_est(path);
                self.origins.push(path.origin());
                self.items.push(path.clone());
                self.index.insert(path.clone(), id);
                (PathId(id), false)
            }
        }
    }

    /// Resolves an id to its path.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this table.
    pub fn get(&self, id: PathId) -> &AsPath {
        &self.items[id.0 as usize]
    }

    /// The cached origin AS of an interned path (`None` when the path ends
    /// in an AS-SET or is empty).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not issued by this table.
    pub fn origin(&self, id: PathId) -> Option<Asn> {
        self.origins[id.0 as usize]
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Estimated heap bytes held by the interned paths.
    pub fn bytes_est(&self) -> usize {
        self.bytes_est
    }
}

/// Rough per-path heap estimate: segment headers plus ASN payloads.
fn path_bytes_est(path: &AsPath) -> usize {
    std::mem::size_of::<AsPath>() + path.raw_len() * std::mem::size_of::<Asn>()
}

struct StoreInner {
    prefixes: RwLock<PrefixTable>,
    paths: RwLock<PathTable>,
    /// Ids at or above this limit fail to intern (`u32::MAX` in practice;
    /// lowered by tests to exercise overflow handling).
    id_limit: u32,
}

/// Shared interned columnar store for one snapshot or a whole snapshot
/// ladder.
///
/// Cloning is cheap (an [`Arc`] bump) and yields a handle to the *same*
/// arenas; use [`SnapshotStore::same`] to test identity. Interior locking
/// makes concurrent reads free of external synchronization; writers should
/// be confined to deterministic serial points (see the module docs).
#[derive(Clone)]
pub struct SnapshotStore(Arc<StoreInner>);

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore::new()
    }
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("prefixes", &self.prefix_count())
            .field("paths", &self.path_count())
            .field("bytes_est", &self.bytes_est())
            .finish()
    }
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::with_id_limit(u32::MAX)
    }

    /// Creates an empty store whose arenas refuse to issue ids at or above
    /// `limit` — a test hook for exercising id-overflow handling without
    /// interning four billion values.
    pub fn with_id_limit(limit: u32) -> SnapshotStore {
        SnapshotStore(Arc::new(StoreInner {
            prefixes: RwLock::new(PrefixTable::default()),
            paths: RwLock::new(PathTable::default()),
            id_limit: limit,
        }))
    }

    /// `true` when `self` and `other` are handles to the same arenas — the
    /// only condition under which their ids are comparable.
    pub fn same(&self, other: &SnapshotStore) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Interns a prefix, returning its id and whether it was already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics when the arena is full (see [`SnapshotStore::try_intern_prefix`]).
    pub fn intern_prefix(&self, prefix: Prefix) -> (PrefixId, bool) {
        self.try_intern_prefix(prefix)
            .expect("prefix arena overflow: id space exhausted")
    }

    /// Interns a prefix, or returns `None` when the arena has exhausted its
    /// id space (new value, no id left to issue).
    pub fn try_intern_prefix(&self, prefix: Prefix) -> Option<(PrefixId, bool)> {
        let mut table = self.0.prefixes.write().expect("prefix arena poisoned");
        if table.lookup(prefix).is_none() && table.len() as u32 >= self.0.id_limit {
            return None;
        }
        Some(table.intern(prefix))
    }

    /// Interns a path, returning its id and whether it was already present.
    ///
    /// # Panics
    ///
    /// Panics when the arena is full (see [`SnapshotStore::try_intern_path`]).
    pub fn intern_path(&self, path: &AsPath) -> (PathId, bool) {
        self.try_intern_path(path)
            .expect("path arena overflow: id space exhausted")
    }

    /// Interns a path, or returns `None` when the arena has exhausted its
    /// id space (new value, no id left to issue).
    pub fn try_intern_path(&self, path: &AsPath) -> Option<(PathId, bool)> {
        let mut table = self.0.paths.write().expect("path arena poisoned");
        if !table.index.contains_key(path) && table.len() as u32 >= self.0.id_limit {
            return None;
        }
        Some(table.intern(path))
    }

    /// Read access to the prefix arena (resolution and lookups). Hold the
    /// guard across a batch of resolutions instead of re-acquiring per id.
    pub fn prefixes(&self) -> RwLockReadGuard<'_, PrefixTable> {
        self.0.prefixes.read().expect("prefix arena poisoned")
    }

    /// Read access to the path arena (resolution and origin lookups). Hold
    /// the guard across a batch of resolutions instead of re-acquiring per
    /// id.
    pub fn paths(&self) -> RwLockReadGuard<'_, PathTable> {
        self.0.paths.read().expect("path arena poisoned")
    }

    /// The id of an already-interned prefix, if any.
    pub fn lookup_prefix(&self, prefix: Prefix) -> Option<PrefixId> {
        self.prefixes().lookup(prefix)
    }

    /// Resolves a prefix id (single-shot; batch via [`SnapshotStore::prefixes`]).
    pub fn resolve_prefix(&self, id: PrefixId) -> Prefix {
        self.prefixes().get(id)
    }

    /// Resolves a path id to an owned path (single-shot; batch via
    /// [`SnapshotStore::paths`]).
    pub fn resolve_path(&self, id: PathId) -> AsPath {
        self.paths().get(id).clone()
    }

    /// Number of interned prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefixes().len()
    }

    /// Number of interned paths.
    pub fn path_count(&self) -> usize {
        self.paths().len()
    }

    /// Estimated heap bytes held by both arenas (interned prefixes plus
    /// interned paths).
    pub fn bytes_est(&self) -> usize {
        self.prefixes().bytes_est() + self.paths().bytes_est()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Prefix {
        Prefix::v4((10 << 24) | (i << 8), 24).unwrap()
    }

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn ids_are_dense_and_first_insertion_ordered() {
        let store = SnapshotStore::new();
        let (a, hit_a) = store.intern_path(&path("1 2 3"));
        let (b, hit_b) = store.intern_path(&path("4 5"));
        let (a2, hit_a2) = store.intern_path(&path("1 2 3"));
        assert_eq!((a, hit_a), (PathId(0), false));
        assert_eq!((b, hit_b), (PathId(1), false));
        assert_eq!((a2, hit_a2), (PathId(0), true), "hash-consed");
        assert_eq!(store.path_count(), 2);
        assert_eq!(store.resolve_path(a), path("1 2 3"));
        assert_eq!(store.resolve_path(b), path("4 5"));
    }

    /// Same insertion sequence ⇒ same ids, in a fresh store — the arena
    /// determinism contract every byte-identity guarantee rests on.
    #[test]
    fn same_insertion_sequence_yields_same_ids() {
        let seq_paths = ["1 2 9", "3 9", "1 2 9", "4 5 9", "3 9"];
        let seq_prefixes = [p(3), p(1), p(3), p(2)];
        let run = || {
            let store = SnapshotStore::new();
            let path_ids: Vec<u32> = seq_paths
                .iter()
                .map(|s| store.intern_path(&path(s)).0 .0)
                .collect();
            let prefix_ids: Vec<u32> = seq_prefixes
                .iter()
                .map(|&q| store.intern_prefix(q).0 .0)
                .collect();
            (path_ids, prefix_ids)
        };
        assert_eq!(run(), run());
        assert_eq!(run().0, vec![0, 1, 0, 2, 1]);
        assert_eq!(run().1, vec![0, 1, 0, 2]);
    }

    #[test]
    fn lookup_and_origin_cache() {
        let store = SnapshotStore::new();
        let (id, _) = store.intern_prefix(p(7));
        assert_eq!(store.lookup_prefix(p(7)), Some(id));
        assert_eq!(store.lookup_prefix(p(8)), None);
        let (pid, _) = store.intern_path(&path("1 5 9"));
        assert_eq!(store.paths().origin(pid), Some(Asn(9)));
        assert_eq!(store.resolve_prefix(id), p(7));
    }

    #[test]
    fn bytes_estimate_grows_only_on_new_paths() {
        let store = SnapshotStore::new();
        store.intern_path(&path("1 2 3"));
        let after_one = store.bytes_est();
        assert!(after_one > 0);
        store.intern_path(&path("1 2 3"));
        assert_eq!(store.bytes_est(), after_one, "re-interning is free");
        store.intern_path(&path("1 2 3 4"));
        assert!(store.bytes_est() > after_one);
    }

    #[test]
    fn id_overflow_is_refused_not_wrapped() {
        let store = SnapshotStore::with_id_limit(2);
        assert!(store.try_intern_path(&path("1")).is_some());
        assert!(store.try_intern_path(&path("2")).is_some());
        // Arena full: a *new* value cannot be issued an id…
        assert_eq!(store.try_intern_path(&path("3")), None);
        // …but re-interning an existing one still resolves.
        assert_eq!(store.try_intern_path(&path("1")), Some((PathId(0), true)));
        assert_eq!(store.try_intern_prefix(p(0)), Some((PrefixId(0), false)));
        assert_eq!(store.try_intern_prefix(p(1)), Some((PrefixId(1), false)));
        assert_eq!(store.try_intern_prefix(p(2)), None);
        assert_eq!(store.path_count(), 2);
        assert_eq!(store.prefix_count(), 2);
    }

    #[test]
    #[should_panic(expected = "path arena overflow")]
    fn panicking_intern_reports_overflow() {
        let store = SnapshotStore::with_id_limit(0);
        store.intern_path(&path("1"));
    }

    #[test]
    fn clones_share_arenas() {
        let a = SnapshotStore::new();
        let b = a.clone();
        assert!(a.same(&b));
        b.intern_path(&path("1 9"));
        assert_eq!(a.path_count(), 1);
        assert!(!a.same(&SnapshotStore::new()));
    }
}
