//! Minimal UTC timestamps for snapshot labelling and MRT headers.
//!
//! The workspace needs just enough calendar arithmetic to name snapshots
//! ("2004-01-15 08:00"), derive archive paths, and step in hours/days/weeks.
//! Rather than pull in a date-time dependency, this module implements the
//! standard civil-calendar conversion (Howard Hinnant's `days_from_civil`
//! algorithm), which is exact over the full study window.

use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Seconds since the Unix epoch, UTC.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A broken-down UTC date and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDateTime {
    /// Calendar year (e.g. 2024).
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
    /// Hour, 0–23.
    pub hour: u8,
    /// Minute, 0–59.
    pub minute: u8,
    /// Second, 0–59.
    pub second: u8,
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date for days since 1970-01-01 (proleptic Gregorian).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

impl SimTime {
    /// One hour in seconds.
    pub const HOUR: u64 = 3600;
    /// One day in seconds.
    pub const DAY: u64 = 86_400;
    /// One week in seconds.
    pub const WEEK: u64 = 7 * Self::DAY;

    /// Builds from raw Unix seconds.
    pub fn from_unix(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Builds from a UTC civil date and time.
    ///
    /// # Panics
    /// Panics if the date precedes the Unix epoch; all study dates are
    /// 2002–2025.
    pub fn from_ymd_hms(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Self {
        let days = days_from_civil(year, month, day);
        assert!(days >= 0, "SimTime cannot represent pre-1970 dates");
        SimTime(days as u64 * Self::DAY + hour as u64 * 3600 + minute as u64 * 60 + second as u64)
    }

    /// Builds midnight UTC of a civil date.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Self {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Raw Unix seconds.
    pub fn unix(self) -> u64 {
        self.0
    }

    /// The broken-down UTC representation.
    pub fn civil(self) -> CivilDateTime {
        let days = (self.0 / Self::DAY) as i64;
        let rem = self.0 % Self::DAY;
        let (year, month, day) = civil_from_days(days);
        CivilDateTime {
            year,
            month,
            day,
            hour: (rem / 3600) as u8,
            minute: ((rem % 3600) / 60) as u8,
            second: (rem % 60) as u8,
        }
    }

    /// This time plus `n` hours.
    pub fn plus_hours(self, n: u64) -> Self {
        SimTime(self.0 + n * Self::HOUR)
    }

    /// This time plus `n` days.
    pub fn plus_days(self, n: u64) -> Self {
        SimTime(self.0 + n * Self::DAY)
    }

    /// This time plus `n` seconds.
    pub fn plus_secs(self, n: u64) -> Self {
        SimTime(self.0 + n)
    }

    /// Seconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// `yyyy.mm` label used in collector archive directory layouts.
    pub fn archive_month(self) -> String {
        let c = self.civil();
        format!("{:04}.{:02}", c.year, c.month)
    }

    /// `yyyymmdd.hhmm` label used in collector archive file names.
    pub fn archive_stamp(self) -> String {
        let c = self.civil();
        format!(
            "{:04}{:02}{:02}.{:02}{:02}",
            c.year, c.month, c.day, c.hour, c.minute
        )
    }
}

impl fmt::Display for SimTime {
    /// `yyyy-mm-dd hh:mm:ss` UTC.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }
}

impl FromStr for SimTime {
    type Err = TypeError;

    /// Parses `yyyy-mm-dd` or `yyyy-mm-dd hh:mm[:ss]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TypeError::Parse {
            what: "SimTime",
            input: s.to_string(),
        };
        let (date, time) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let year: i32 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u8 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u8 = dp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err());
        }
        let (hour, minute, second) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut tp = t.split(':');
                let h: u8 = tp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
                let m: u8 = tp.next().ok_or_else(err)?.parse().map_err(|_| err())?;
                let s: u8 = match tp.next() {
                    Some(x) => x.parse().map_err(|_| err())?,
                    None => 0,
                };
                if tp.next().is_some() || h > 23 || m > 59 || s > 59 {
                    return Err(err());
                }
                (h, m, s)
            }
        };
        if year < 1970 {
            return Err(err());
        }
        Ok(SimTime::from_ymd_hms(
            year, month, day, hour, minute, second,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1).unix(), 0);
    }

    #[test]
    fn known_timestamps() {
        // The paper's reconstructed 2002 snapshot: 2002-01-15 08:00 UTC.
        let t = SimTime::from_ymd_hms(2002, 1, 15, 8, 0, 0);
        assert_eq!(t.unix(), 1_011_081_600);
        // First modern snapshot: 2004-01-15 08:00 UTC.
        let t = SimTime::from_ymd_hms(2004, 1, 15, 8, 0, 0);
        assert_eq!(t.unix(), 1_074_153_600);
        // Last snapshot: 2024-10-15 08:00 UTC.
        let t = SimTime::from_ymd_hms(2024, 10, 15, 8, 0, 0);
        assert_eq!(t.unix(), 1_728_979_200);
    }

    #[test]
    fn civil_round_trip_across_leap_years() {
        for (y, m, d) in [
            (2000, 2, 29),
            (2004, 2, 29),
            (2001, 3, 1),
            (2024, 12, 31),
            (1999, 1, 1),
            (2100, 6, 15),
        ] {
            let t = SimTime::from_ymd(y, m, d);
            let c = t.civil();
            assert_eq!((c.year, c.month, c.day), (y, m, d), "date {y}-{m}-{d}");
            assert_eq!((c.hour, c.minute, c.second), (0, 0, 0));
        }
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_ymd_hms(2004, 1, 15, 8, 0, 0);
        assert_eq!(t.to_string(), "2004-01-15 08:00:00");
    }

    #[test]
    fn parse_variants() {
        assert_eq!(
            "2004-01-15".parse::<SimTime>().unwrap(),
            SimTime::from_ymd(2004, 1, 15)
        );
        assert_eq!(
            "2004-01-15 08:00".parse::<SimTime>().unwrap(),
            SimTime::from_ymd_hms(2004, 1, 15, 8, 0, 0)
        );
        assert_eq!(
            "2004-01-15 08:00:30".parse::<SimTime>().unwrap(),
            SimTime::from_ymd_hms(2004, 1, 15, 8, 0, 30)
        );
        assert!("2004-13-01".parse::<SimTime>().is_err());
        assert!("2004-01-32".parse::<SimTime>().is_err());
        assert!("2004-01-15 24:00".parse::<SimTime>().is_err());
        assert!("1969-12-31".parse::<SimTime>().is_err());
        assert!("garbage".parse::<SimTime>().is_err());
    }

    #[test]
    fn arithmetic_helpers() {
        let t = SimTime::from_ymd_hms(2004, 1, 15, 8, 0, 0);
        assert_eq!(t.plus_hours(8).to_string(), "2004-01-15 16:00:00");
        assert_eq!(t.plus_days(1).to_string(), "2004-01-16 08:00:00");
        assert_eq!(
            t.plus_secs(SimTime::WEEK).to_string(),
            "2004-01-22 08:00:00"
        );
        assert_eq!(t.plus_hours(8).since(t), 8 * 3600);
        assert_eq!(t.since(t.plus_hours(8)), 0, "since saturates");
    }

    #[test]
    fn archive_labels() {
        let t = SimTime::from_ymd_hms(2024, 10, 15, 8, 0, 0);
        assert_eq!(t.archive_month(), "2024.10");
        assert_eq!(t.archive_stamp(), "20241015.0800");
    }
}
