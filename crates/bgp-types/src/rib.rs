//! RIB entries and the attributes carried with a route.

use crate::as_path::AsPath;
use crate::asn::Asn;
use crate::community::Community;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// The BGP ORIGIN attribute (RFC 4271 §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RouteOrigin {
    /// Learned from an interior protocol (`ORIGIN=IGP`). The overwhelmingly
    /// common value in collector data, hence the default.
    #[default]
    Igp,
    /// Learned via EGP (`ORIGIN=EGP`), historical.
    Egp,
    /// Origin unknown (`ORIGIN=INCOMPLETE`), typically redistributed statics.
    Incomplete,
}

impl RouteOrigin {
    /// The wire encoding (0, 1, 2).
    pub fn code(self) -> u8 {
        match self {
            RouteOrigin::Igp => 0,
            RouteOrigin::Egp => 1,
            RouteOrigin::Incomplete => 2,
        }
    }

    /// Decodes the wire value.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RouteOrigin::Igp),
            1 => Some(RouteOrigin::Egp),
            2 => Some(RouteOrigin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for RouteOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteOrigin::Igp => write!(f, "IGP"),
            RouteOrigin::Egp => write!(f, "EGP"),
            RouteOrigin::Incomplete => write!(f, "INCOMPLETE"),
        }
    }
}

/// The path attributes the policy-atom analysis cares about.
///
/// Collector RIB dumps carry more attributes; everything not needed for
/// grouping prefixes by AS path is intentionally absent (smoltcp-style: the
/// omission is documented, not accidental).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct RouteAttrs {
    /// The AS path in wire order.
    pub path: AsPath,
    /// The ORIGIN attribute.
    pub origin: RouteOrigin,
    /// Standard communities attached to the route.
    pub communities: Vec<Community>,
}

impl RouteAttrs {
    /// Builds attributes carrying just an AS path.
    pub fn from_path(path: AsPath) -> Self {
        RouteAttrs {
            path,
            ..Default::default()
        }
    }
}

/// Identity of a collector peer session: the peer's AS and its router
/// address. Two sessions from the same AS at different routers are distinct
/// vantage points, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerKey {
    /// The peer's autonomous system.
    pub asn: Asn,
    /// The peer router's address on the collector session.
    pub addr: IpAddr,
}

impl PeerKey {
    /// Convenience constructor.
    pub fn new(asn: Asn, addr: IpAddr) -> Self {
        PeerKey { asn, addr }
    }
}

impl fmt::Display for PeerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.asn, self.addr)
    }
}

/// One route in a peer's table: a prefix and the attributes the peer
/// reported for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The route's attributes (AS path, origin, communities).
    pub attrs: RouteAttrs,
}

impl RibEntry {
    /// Builds an entry from a prefix and path.
    pub fn new(prefix: Prefix, path: AsPath) -> Self {
        RibEntry {
            prefix,
            attrs: RouteAttrs::from_path(path),
        }
    }

    /// The origin AS of the route, if unambiguous.
    pub fn origin_as(&self) -> Option<Asn> {
        self.attrs.path.origin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn route_origin_codes_round_trip() {
        for o in [RouteOrigin::Igp, RouteOrigin::Egp, RouteOrigin::Incomplete] {
            assert_eq!(RouteOrigin::from_code(o.code()), Some(o));
        }
        assert_eq!(RouteOrigin::from_code(3), None);
        assert_eq!(RouteOrigin::default(), RouteOrigin::Igp);
        assert_eq!(RouteOrigin::Incomplete.to_string(), "INCOMPLETE");
    }

    #[test]
    fn peer_key_identity() {
        let a = PeerKey::new(Asn(3356), IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        let b = PeerKey::new(Asn(3356), IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)));
        assert_ne!(a, b, "same AS, different router => different vantage point");
        assert_eq!(a.to_string(), "AS3356@10.0.0.1");
        assert!(a < b);
    }

    #[test]
    fn rib_entry_origin() {
        let e = RibEntry::new(
            "192.0.2.0/24".parse().unwrap(),
            "3356 1299 64500".parse().unwrap(),
        );
        assert_eq!(e.origin_as(), Some(Asn(64500)));
        let empty = RibEntry::new("192.0.2.0/24".parse().unwrap(), AsPath::empty());
        assert_eq!(empty.origin_as(), None);
    }

    #[test]
    fn attrs_from_path() {
        let attrs = RouteAttrs::from_path("1 2".parse().unwrap());
        assert_eq!(attrs.origin, RouteOrigin::Igp);
        assert!(attrs.communities.is_empty());
        assert_eq!(attrs.path.to_string(), "1 2");
    }
}
