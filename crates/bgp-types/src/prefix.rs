//! IPv4 and IPv6 prefixes in canonical (host-bits-zero) form.

use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Address family of a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Family {
    /// IPv4.
    Ipv4,
    /// IPv6.
    Ipv6,
}

impl Family {
    /// Maximum prefix length for the family (32 or 128).
    pub fn max_len(self) -> u8 {
        match self {
            Family::Ipv4 => 32,
            Family::Ipv6 => 128,
        }
    }

    /// The paper's per-family prefix-length cap (§2.4.3): /24 for IPv4,
    /// /48 for IPv6. More-specific prefixes are filtered out.
    pub fn global_routing_max_len(self) -> u8 {
        match self {
            Family::Ipv4 => 24,
            Family::Ipv6 => 48,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Ipv4 => write!(f, "IPv4"),
            Family::Ipv6 => write!(f, "IPv6"),
        }
    }
}

/// An IPv4 prefix in canonical form (no host bits set).
///
/// The address is stored as a host-order `u32` so prefixes are cheap to
/// compare, hash, and mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits, not a container size
impl Ipv4Prefix {
    /// Creates a prefix, rejecting out-of-range lengths and set host bits.
    pub fn new(addr: u32, len: u8) -> Result<Self, TypeError> {
        if len > 32 {
            return Err(TypeError::PrefixLenOutOfRange { len, max: 32 });
        }
        let masked = mask_v4(addr, len);
        if masked != addr {
            return Err(TypeError::HostBitsSet);
        }
        Ok(Ipv4Prefix { addr, len })
    }

    /// Creates a prefix, silently zeroing any host bits.
    pub fn new_masked(addr: u32, len: u8) -> Result<Self, TypeError> {
        if len > 32 {
            return Err(TypeError::PrefixLenOutOfRange { len, max: 32 });
        }
        Ok(Ipv4Prefix {
            addr: mask_v4(addr, len),
            len,
        })
    }

    /// The network address as a host-order `u32`.
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        self.len
    }

    /// The network address as a [`std::net::Ipv4Addr`].
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Returns `true` iff `other` is equal to or more specific than `self`.
    pub fn contains(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && mask_v4(other.addr, self.len) == self.addr
    }
}

fn mask_v4(addr: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        addr & (u32::MAX << (32 - len as u32))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// An IPv6 prefix in canonical form (no host bits set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    addr: u128,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits, not a container size
impl Ipv6Prefix {
    /// Creates a prefix, rejecting out-of-range lengths and set host bits.
    pub fn new(addr: u128, len: u8) -> Result<Self, TypeError> {
        if len > 128 {
            return Err(TypeError::PrefixLenOutOfRange { len, max: 128 });
        }
        let masked = mask_v6(addr, len);
        if masked != addr {
            return Err(TypeError::HostBitsSet);
        }
        Ok(Ipv6Prefix { addr, len })
    }

    /// Creates a prefix, silently zeroing any host bits.
    pub fn new_masked(addr: u128, len: u8) -> Result<Self, TypeError> {
        if len > 128 {
            return Err(TypeError::PrefixLenOutOfRange { len, max: 128 });
        }
        Ok(Ipv6Prefix {
            addr: mask_v6(addr, len),
            len,
        })
    }

    /// The network address as a host-order `u128`.
    pub fn addr(self) -> u128 {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        self.len
    }

    /// The network address as a [`std::net::Ipv6Addr`].
    pub fn network(self) -> Ipv6Addr {
        Ipv6Addr::from(self.addr)
    }

    /// Returns `true` iff `other` is equal to or more specific than `self`.
    pub fn contains(self, other: Ipv6Prefix) -> bool {
        other.len >= self.len && mask_v6(other.addr, self.len) == self.addr
    }
}

fn mask_v6(addr: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        addr & (u128::MAX << (128 - len as u32))
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// An IP prefix of either family.
///
/// `Prefix` orders IPv4 before IPv6 and then by (address, length), giving a
/// stable total order used throughout the analysis pipeline for deterministic
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Ipv4Prefix),
    /// An IPv6 prefix.
    V6(Ipv6Prefix),
}

#[allow(clippy::len_without_is_empty)] // `len` is the prefix length in bits, not a container size
impl Prefix {
    /// Convenience constructor for canonical IPv4 prefixes.
    pub fn v4(addr: u32, len: u8) -> Result<Self, TypeError> {
        Ipv4Prefix::new(addr, len).map(Prefix::V4)
    }

    /// Convenience constructor for canonical IPv6 prefixes.
    pub fn v6(addr: u128, len: u8) -> Result<Self, TypeError> {
        Ipv6Prefix::new(addr, len).map(Prefix::V6)
    }

    /// The address family.
    pub fn family(self) -> Family {
        match self {
            Prefix::V4(_) => Family::Ipv4,
            Prefix::V6(_) => Family::Ipv6,
        }
    }

    /// The prefix length in bits.
    pub fn len(self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// Returns `true` for the zero-length default route of either family.
    pub fn is_default_route(self) -> bool {
        self.len() == 0
    }

    /// Returns `true` iff `other` is the same family and equal to or more
    /// specific than `self`.
    pub fn contains(self, other: Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.contains(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.contains(b),
            _ => false,
        }
    }

    /// Returns `true` iff the prefix passes the paper's global-routing
    /// length cap (§2.4.3): ≤/24 for IPv4, ≤/48 for IPv6.
    pub fn within_global_routing_len(self) -> bool {
        self.len() <= self.family().global_routing_max_len()
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for Prefix {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TypeError::Parse {
            what: "Prefix",
            input: s.to_string(),
        };
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if let Ok(v4) = addr.parse::<Ipv4Addr>() {
            Ipv4Prefix::new(u32::from(v4), len).map(Prefix::V4)
        } else if let Ok(v6) = addr.parse::<Ipv6Addr>() {
            Ipv6Prefix::new(u128::from(v6), len).map(Prefix::V6)
        } else {
            Err(err())
        }
    }
}

impl From<Ipv4Prefix> for Prefix {
    fn from(p: Ipv4Prefix) -> Self {
        Prefix::V4(p)
    }
}

impl From<Ipv6Prefix> for Prefix {
    fn from(p: Ipv6Prefix) -> Self {
        Prefix::V6(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_construction_enforces_canonical_form() {
        assert!(Ipv4Prefix::new(0x0A000000, 8).is_ok()); // 10.0.0.0/8
        assert_eq!(Ipv4Prefix::new(0x0A000001, 8), Err(TypeError::HostBitsSet));
        assert_eq!(
            Ipv4Prefix::new(0, 33),
            Err(TypeError::PrefixLenOutOfRange { len: 33, max: 32 })
        );
        let p = Ipv4Prefix::new_masked(0x0A0000FF, 8).unwrap();
        assert_eq!(p.addr(), 0x0A000000);
    }

    #[test]
    fn v4_zero_length() {
        let p = Ipv4Prefix::new(0, 0).unwrap();
        assert_eq!(p.to_string(), "0.0.0.0/0");
        assert!(Prefix::V4(p).is_default_route());
        // /0 with nonzero address is non-canonical.
        assert!(Ipv4Prefix::new(1, 0).is_err());
    }

    #[test]
    fn v4_display_and_parse_round_trip() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "192.0.2.0/24");
        assert_eq!(p.family(), Family::Ipv4);
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn v6_display_and_parse_round_trip() {
        let p: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p.to_string(), "2001:db8::/32");
        assert_eq!(p.family(), Family::Ipv6);
        let fiti: Prefix = "240a:a000::/20".parse().unwrap();
        assert_eq!(fiti.len(), 20);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("10.0.0.0".parse::<Prefix>().is_err()); // missing length
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
        assert!("10.0.0.1/8".parse::<Prefix>().is_err()); // host bits
        assert!("nonsense/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment_v4() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.1.0.0/16".parse().unwrap();
        let other: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(big.contains(small));
        assert!(!small.contains(big));
        assert!(big.contains(big));
        assert!(!big.contains(other));
    }

    #[test]
    fn containment_v6_and_cross_family() {
        let big: Prefix = "2001:db8::/32".parse().unwrap();
        let small: Prefix = "2001:db8:1::/48".parse().unwrap();
        let v4: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(big.contains(small));
        assert!(!small.contains(big));
        assert!(!big.contains(v4));
        assert!(!v4.contains(big));
    }

    #[test]
    fn global_routing_caps() {
        assert!("10.0.0.0/24"
            .parse::<Prefix>()
            .unwrap()
            .within_global_routing_len());
        assert!(!"10.0.0.128/25"
            .parse::<Prefix>()
            .unwrap()
            .within_global_routing_len());
        assert!("2001:db8::/48"
            .parse::<Prefix>()
            .unwrap()
            .within_global_routing_len());
        assert!(!"2001:db8:0:1::/64"
            .parse::<Prefix>()
            .unwrap()
            .within_global_routing_len());
        assert_eq!(Family::Ipv4.global_routing_max_len(), 24);
        assert_eq!(Family::Ipv6.global_routing_max_len(), 48);
    }

    #[test]
    fn ordering_is_stable_v4_before_v6() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.0.0.0/9".parse().unwrap();
        let c: Prefix = "2001:db8::/32".parse().unwrap();
        let mut v = vec![c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn v6_masking() {
        let p = Ipv6Prefix::new_masked(u128::MAX, 20).unwrap();
        assert_eq!(p.len(), 20);
        assert_eq!(p.addr() & ((1u128 << 108) - 1), 0);
        assert!(Ipv6Prefix::new(0, 0).is_ok());
        assert!(Ipv6Prefix::new(1, 0).is_err());
    }

    #[test]
    fn family_display_and_max_len() {
        assert_eq!(Family::Ipv4.to_string(), "IPv4");
        assert_eq!(Family::Ipv6.to_string(), "IPv6");
        assert_eq!(Family::Ipv4.max_len(), 32);
        assert_eq!(Family::Ipv6.max_len(), 128);
    }
}
