//! A binary prefix trie with longest-prefix match and coverage queries.
//!
//! Used by the analysis layer to reason about aggregates: the paper notes
//! that "a network may aggregate prefixes or have only received an
//! aggregated prefix for traffic engineering purposes" (§2.4.3), so
//! more-specific/covering relationships matter when interpreting
//! visibility. The trie answers, for any prefix: its longest covering
//! announced prefix, and whether any announced more-specifics exist.

use crate::prefix::{Family, Prefix};
use std::fmt::Debug;

/// Bit accessor: the `i`-th most significant bit of the prefix address.
fn bit(p: Prefix, i: u8) -> bool {
    match p {
        Prefix::V4(v) => (v.addr() >> (31 - i)) & 1 == 1,
        Prefix::V6(v) => (v.addr() >> (127 - i)) & 1 == 1,
    }
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from prefixes to values with longest-prefix-match lookup.
///
/// One trie holds one address family; inserting mixed families is
/// rejected. Lookups are O(prefix length).
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    family: Option<Family>,
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// An empty trie (family fixed by the first insert).
    pub fn new() -> Self {
        PrefixTrie {
            family: None,
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `prefix → value`; returns the previous value if the prefix
    /// was present, or an error if the family differs from the trie's.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Result<Option<V>, crate::TypeError> {
        match self.family {
            None => self.family = Some(prefix.family()),
            Some(f) if f != prefix.family() => {
                return Err(crate::TypeError::Parse {
                    what: "PrefixTrie family",
                    input: prefix.to_string(),
                })
            }
            Some(_) => {}
        }
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix, i) as usize;
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        if Some(prefix.family()) != self.family {
            return None;
        }
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix, i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match: the most specific stored prefix that covers
    /// `prefix` (including an exact match), with its value.
    pub fn longest_match(&self, prefix: Prefix) -> Option<(u8, &V)> {
        if Some(prefix.family()) != self.family {
            return None;
        }
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..prefix.len() {
            let b = bit(prefix, i) as usize;
            match node.children[b].as_deref() {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// The most specific *strict* covering prefix (excludes the exact
    /// match) — "is this announcement a more-specific of an aggregate?".
    pub fn covering(&self, prefix: Prefix) -> Option<(u8, &V)> {
        if Some(prefix.family()) != self.family {
            return None;
        }
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..prefix.len().saturating_sub(1) {
            let b = bit(prefix, i) as usize;
            match node.children[b].as_deref() {
                Some(next) => {
                    node = next;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        // Strictly-less-specific only: the /0 default route has no
        // strict cover (its own entry must not match).
        best.filter(|&(len, _)| len < prefix.len())
    }

    /// Returns `true` if any stored prefix is a strict more-specific of
    /// `prefix`.
    pub fn has_more_specific(&self, prefix: Prefix) -> bool {
        if Some(prefix.family()) != self.family {
            return false;
        }
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix, i) as usize;
            match node.children[b].as_deref() {
                Some(next) => node = next,
                None => return false,
            }
        }
        // Anything below this node is a strict more-specific.
        fn subtree_has_value<V>(n: &Node<V>, include_self: bool) -> bool {
            if include_self && n.value.is_some() {
                return true;
            }
            n.children
                .iter()
                .flatten()
                .any(|c| subtree_has_value(c, true))
        }
        subtree_has_value(node, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_len() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1).unwrap(), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2).unwrap(), Some(1));
        assert_eq!(t.insert(p("10.1.0.0/16"), 3).unwrap(), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.1.0.0/16")), Some(&3));
        assert_eq!(t.get(p("10.2.0.0/16")), None);
    }

    #[test]
    fn longest_match_picks_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight").unwrap();
        t.insert(p("10.1.0.0/16"), "sixteen").unwrap();
        assert_eq!(t.longest_match(p("10.1.2.0/24")), Some((16, &"sixteen")));
        assert_eq!(t.longest_match(p("10.2.2.0/24")), Some((8, &"eight")));
        assert_eq!(t.longest_match(p("11.0.0.0/24")), None);
        // Exact match counts.
        assert_eq!(t.longest_match(p("10.1.0.0/16")), Some((16, &"sixteen")));
    }

    #[test]
    fn covering_excludes_exact() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ()).unwrap();
        t.insert(p("10.1.0.0/16"), ()).unwrap();
        assert_eq!(t.covering(p("10.1.0.0/16")), Some((8, &())));
        assert_eq!(t.covering(p("10.0.0.0/8")), None);
        assert_eq!(t.covering(p("10.1.2.0/24")), Some((16, &())));
        // The default route cannot be strictly covered, even by itself.
        let mut t0 = PrefixTrie::new();
        t0.insert(p("0.0.0.0/0"), ()).unwrap();
        assert_eq!(t0.covering(p("0.0.0.0/0")), None);
    }

    #[test]
    fn more_specific_detection() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), ()).unwrap();
        assert!(t.has_more_specific(p("10.0.0.0/8")));
        assert!(
            !t.has_more_specific(p("10.1.0.0/16")),
            "exact is not strict"
        );
        assert!(!t.has_more_specific(p("10.1.2.0/24")));
        assert!(!t.has_more_specific(p("11.0.0.0/8")));
    }

    #[test]
    fn default_route_covers_everything() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default").unwrap();
        assert_eq!(t.longest_match(p("203.0.113.0/24")), Some((0, &"default")));
        assert_eq!(t.covering(p("203.0.113.0/24")), Some((0, &"default")));
        assert!(!t.has_more_specific(p("0.0.0.0/0")));
        t.insert(p("203.0.113.0/24"), "specific").unwrap();
        assert!(t.has_more_specific(p("0.0.0.0/0")));
    }

    #[test]
    fn ipv6_and_family_separation() {
        let mut t = PrefixTrie::new();
        t.insert(p("2001:db8::/32"), 1).unwrap();
        assert!(
            t.insert(p("10.0.0.0/8"), 2).is_err(),
            "mixed family rejected"
        );
        assert_eq!(t.longest_match(p("2001:db8:1::/48")), Some((32, &1)));
        assert_eq!(t.longest_match(p("2001:db9::/32")), None);
        assert_eq!(
            t.get(p("10.0.0.0/8")),
            None,
            "wrong family lookups are None"
        );
    }
}
