//! Autonomous System Numbers.

use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 4-byte Autonomous System Number (RFC 6793).
///
/// Stored as a plain `u32`; 2-byte ASNs occupy the low 16 bits. The type is
/// `Copy` and ordered so it can serve directly as a map key or a sort key.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// AS_TRANS (RFC 6793): stands in for a 4-byte ASN on 2-byte sessions.
    pub const TRANS: Asn = Asn(23456);

    /// The reserved ASN 0 (RFC 7607) — must never appear in an AS path.
    pub const RESERVED_ZERO: Asn = Asn(0);

    /// Returns `true` for ASNs in the private-use ranges
    /// 64512–65534 (RFC 6996) and 4200000000–4294967294 (RFC 6996).
    ///
    /// The paper's sanitization (§2.4.4, Appendix A8.3.2) flags peers that
    /// leak private ASNs — notably AS65000 — into globally visible paths.
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }

    /// Returns `true` for ASNs reserved for documentation:
    /// 64496–64511 and 65536–65551 (RFC 5398).
    pub fn is_documentation(self) -> bool {
        (64496..=64511).contains(&self.0) || (65536..=65551).contains(&self.0)
    }

    /// Returns `true` for ASNs that must not be routed globally:
    /// 0, 65535, 4294967295, plus the private and documentation ranges.
    pub fn is_reserved(self) -> bool {
        self.0 == 0
            || self.0 == 65535
            || self.0 == u32::MAX
            || self.is_private()
            || self.is_documentation()
    }

    /// Returns `true` if this ASN fits in 2 bytes.
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

impl FromStr for Asn {
    type Err = TypeError;

    /// Parses either a bare number (`"3257"`) or the `AS`-prefixed form
    /// (`"AS3257"`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| TypeError::Parse {
                what: "Asn",
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_as_prefix() {
        assert_eq!(Asn(3257).to_string(), "AS3257");
        assert_eq!(Asn(0).to_string(), "AS0");
    }

    #[test]
    fn parse_accepts_bare_and_prefixed() {
        assert_eq!("3257".parse::<Asn>().unwrap(), Asn(3257));
        assert_eq!("AS3257".parse::<Asn>().unwrap(), Asn(3257));
        assert_eq!("as65000".parse::<Asn>().unwrap(), Asn(65000));
        assert_eq!("As12".parse::<Asn>().unwrap(), Asn(12));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("ASx".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65000).is_private()); // the paper's misconfigured peer
        assert!(Asn(65534).is_private());
        assert!(!Asn(64511).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(Asn(4_294_967_294).is_private());
        assert!(!Asn(4_294_967_295).is_private());
        assert!(!Asn(3257).is_private());
    }

    #[test]
    fn documentation_ranges() {
        assert!(Asn(64496).is_documentation());
        assert!(Asn(64511).is_documentation());
        assert!(Asn(65536).is_documentation());
        assert!(Asn(65551).is_documentation());
        assert!(!Asn(65552).is_documentation());
    }

    #[test]
    fn reserved_covers_specials() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(65535).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(Asn(65000).is_reserved());
        assert!(!Asn(23456).is_reserved()); // AS_TRANS is allocatable-special, not reserved-range
        assert!(!Asn(701).is_reserved());
    }

    #[test]
    fn width_check() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = vec![Asn(10), Asn(2), Asn(300)];
        v.sort();
        assert_eq!(v, vec![Asn(2), Asn(10), Asn(300)]);
    }

    #[test]
    fn serde_is_transparent() {
        let j = serde_json::to_string(&Asn(42)).unwrap();
        assert_eq!(j, "42");
        let a: Asn = serde_json::from_str("42").unwrap();
        assert_eq!(a, Asn(42));
    }
}
