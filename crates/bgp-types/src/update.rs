//! BGP UPDATE records as they appear in collector update archives.

use crate::prefix::Prefix;
use crate::rib::{PeerKey, RouteAttrs};
use crate::timestamp::SimTime;
use serde::{Deserialize, Serialize};

/// One BGP UPDATE message received from one peer.
///
/// The unit of the paper's §3.3 correlation analysis: "for every update
/// record r, let Prefix(r) be the set of prefixes inside the update record".
/// A single UPDATE can announce many prefixes (all sharing one set of path
/// attributes) and withdraw others.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// When the collector received the message.
    pub timestamp: SimTime,
    /// The peer session the message arrived on.
    pub peer: PeerKey,
    /// Prefixes announced by this message (all share `attrs`).
    pub announced: Vec<Prefix>,
    /// Prefixes withdrawn by this message.
    pub withdrawn: Vec<Prefix>,
    /// Path attributes for the announced prefixes. Meaningless when
    /// `announced` is empty.
    pub attrs: RouteAttrs,
}

impl UpdateRecord {
    /// A pure announcement.
    pub fn announce(
        timestamp: SimTime,
        peer: PeerKey,
        announced: Vec<Prefix>,
        attrs: RouteAttrs,
    ) -> Self {
        UpdateRecord {
            timestamp,
            peer,
            announced,
            withdrawn: Vec::new(),
            attrs,
        }
    }

    /// A pure withdrawal.
    pub fn withdraw(timestamp: SimTime, peer: PeerKey, withdrawn: Vec<Prefix>) -> Self {
        UpdateRecord {
            timestamp,
            peer,
            announced: Vec::new(),
            withdrawn,
            attrs: RouteAttrs::default(),
        }
    }

    /// All prefixes mentioned by the record — announced and withdrawn —
    /// which is the `Prefix(r)` set of the paper's correlation analysis.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.announced.iter().chain(self.withdrawn.iter()).copied()
    }

    /// Number of prefixes mentioned by the record.
    pub fn prefix_count(&self) -> usize {
        self.announced.len() + self.withdrawn.len()
    }

    /// Returns `true` if the record mentions no prefixes (e.g. an
    /// end-of-RIB marker).
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::Asn;
    use std::net::{IpAddr, Ipv4Addr};

    fn peer() -> PeerKey {
        PeerKey::new(Asn(3356), IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)))
    }

    #[test]
    fn announce_constructor() {
        let r = UpdateRecord::announce(
            SimTime::from_unix(100),
            peer(),
            vec!["192.0.2.0/24".parse().unwrap()],
            RouteAttrs::from_path("3356 64500".parse().unwrap()),
        );
        assert_eq!(r.prefix_count(), 1);
        assert!(!r.is_empty());
        assert!(r.withdrawn.is_empty());
    }

    #[test]
    fn withdraw_constructor() {
        let r = UpdateRecord::withdraw(
            SimTime::from_unix(100),
            peer(),
            vec![
                "192.0.2.0/24".parse().unwrap(),
                "198.51.100.0/24".parse().unwrap(),
            ],
        );
        assert_eq!(r.prefix_count(), 2);
        assert!(r.announced.is_empty());
    }

    #[test]
    fn prefixes_iterates_both_sides() {
        let mut r = UpdateRecord::announce(
            SimTime::from_unix(0),
            peer(),
            vec!["192.0.2.0/24".parse().unwrap()],
            RouteAttrs::default(),
        );
        r.withdrawn.push("198.51.100.0/24".parse().unwrap());
        let all: Vec<Prefix> = r.prefixes().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn empty_record() {
        let r = UpdateRecord::withdraw(SimTime::from_unix(0), peer(), vec![]);
        assert!(r.is_empty());
        assert_eq!(r.prefix_count(), 0);
    }
}
