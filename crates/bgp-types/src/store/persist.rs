//! Versioned, checksummed on-disk form of an interned snapshot.
//!
//! One file holds one sanitized snapshot: the hash-consed prefix and path
//! arenas of its [`SnapshotStore`](crate::SnapshotStore) plus the columnar
//! per-peer `(PrefixId, PathId)` tables, laid out as plain little-endian
//! slices behind a fixed header so a loader can memory-map the file and
//! read sections in place. The layout is:
//!
//! ```text
//! [ header        | 32 B  | magic, version, section count, file length,
//!                           section-table checksum                      ]
//! [ section table | 32 B × count | kind, offset, length, checksum each  ]
//! [ sections…     | 8-byte aligned, zero-padded between                 ]
//! ```
//!
//! Section kinds (every kind exactly once, any order):
//!
//! | kind | name        | contents                                         |
//! |------|-------------|--------------------------------------------------|
//! | 1    | PREFIXES    | 24 B records: family, plen, pad, u128 LE address |
//! | 2    | PATH_INDEX  | `(n_paths + 1)` u32 offsets into PATH_TOKENS     |
//! | 3    | PATH_TOKENS | u32 stream; per segment a header word (bit 31 =  |
//! |      |             | AS_SET, low 31 bits = member count) then members |
//! | 4    | SNAP_HEAD   | timestamp u64, family u32, n_peers u32,          |
//! |      |             | n_entries u64, reserved u64                      |
//! | 5    | SNAP_META   | opaque caller bytes (report, peers, …)           |
//! | 6    | SNAP_TABLES | `(n_peers + 1)` u64 entry boundaries, then       |
//! |      |             | n_entries × (prefix u32, path u32) pairs         |
//!
//! Integrity is layered: the header pins the file length and checksums the
//! section table; every section carries its own 64-bit checksum; and
//! [`PersistedSnapshot::rebuild`] re-validates structure (id bounds, token
//! spans, arena uniqueness) so a corrupt file yields a typed
//! [`PersistError`] — never a panic or a silently-wrong load.
//!
//! Versioning policy: `VERSION` bumps on any layout change; readers refuse
//! unknown versions outright (the format is a cache of re-derivable data,
//! so migration is "rebuild the store directory", not in-place upgrade).
//!
//! This module is pure codec — `&[u8]` in, `Vec<u8>` out — and stays under
//! the crate's `#![forbid(unsafe_code)]`. Memory mapping (the zero-copy
//! byte source) lives with the store-directory layer in `atoms-core`,
//! which hands whatever `AsRef<[u8]>` it obtained to
//! [`PersistedSnapshot::parse`].

use crate::as_path::{AsPath, Segment};
use crate::asn::Asn;
use crate::prefix::{Family, Prefix};
use crate::store::{PathId, PrefixId, SnapshotStore};
use crate::timestamp::SimTime;
use std::fmt;

/// File magic: "policy-atoms snapshot", format generation 1.
pub const MAGIC: [u8; 8] = *b"PASNAP01";
/// Current layout version; bumped on any incompatible change.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;
const SECTION_ENTRY_LEN: usize = 32;
const PREFIX_RECORD_LEN: usize = 24;
const SNAP_HEAD_LEN: usize = 32;
const ALIGN: usize = 8;
/// Hard cap on the section count a reader will accept: the format defines
/// six kinds, so anything larger is corruption, not growth.
const MAX_SECTIONS: u32 = 16;

const KIND_PREFIXES: u32 = 1;
const KIND_PATH_INDEX: u32 = 2;
const KIND_PATH_TOKENS: u32 = 3;
const KIND_SNAP_HEAD: u32 = 4;
const KIND_SNAP_META: u32 = 5;
const KIND_SNAP_TABLES: u32 = 6;

const FAMILY_V4: u32 = 4;
const FAMILY_V6: u32 = 6;

/// AS_SET flag in a path-token segment header word.
const SEGMENT_SET_BIT: u32 = 1 << 31;

/// What [`PersistedSnapshot::rebuild`] reconstructs: a fresh store holding
/// both arenas plus the columnar per-peer tables.
pub type RebuiltSnapshot = (SnapshotStore, Vec<Vec<(PrefixId, PathId)>>);

/// Why a persisted snapshot could not be used. Every variant is a refusal
/// with enough context to name the failing structure; none of the
/// validation paths panic on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ends before the structure declared at `what` does.
    Truncated {
        /// The structure that did not fit.
        what: &'static str,
        /// Bytes required to read it.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first 8 bytes are not the snapshot magic.
    BadMagic,
    /// The file declares a layout version this reader does not know.
    UnsupportedVersion(u32),
    /// The header's recorded file length does not match the buffer.
    LengthMismatch {
        /// Length recorded in the header.
        recorded: u64,
        /// Length of the buffer handed to the parser.
        actual: u64,
    },
    /// A checksum failed over `what` (flipped or missing bytes).
    ChecksumMismatch {
        /// The covered region ("section table" or a section name).
        what: &'static str,
    },
    /// The section table is structurally invalid (overlapping, unaligned,
    /// out-of-bounds, duplicated, or missing sections).
    BadSectionTable(&'static str),
    /// A section's payload failed structural validation.
    Malformed {
        /// The section that failed.
        section: &'static str,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            PersistError::BadMagic => write!(f, "not a persisted snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (reader knows {VERSION})"
                )
            }
            PersistError::LengthMismatch { recorded, actual } => write!(
                f,
                "file length mismatch: header records {recorded} bytes, buffer holds {actual}"
            ),
            PersistError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch over {what}")
            }
            PersistError::BadSectionTable(reason) => write!(f, "bad section table: {reason}"),
            PersistError::Malformed { section, reason } => {
                write!(f, "malformed {section} section: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// 64-bit non-cryptographic checksum over a byte slice: 8-byte chunks fed
/// through a SplitMix64-style finalizer with rotate-multiply chaining.
/// Self-contained (no external hash crates) and stable across platforms —
/// the value is part of the on-disk format. Any single flipped bit
/// avalanches through the finalizer, which is all a corruption detector
/// needs.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = GOLDEN ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ mix(word)).rotate_left(27).wrapping_mul(GOLDEN);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = (h ^ mix(u64::from_le_bytes(tail)))
            .rotate_left(27)
            .wrapping_mul(GOLDEN);
    }
    mix(h)
}

fn family_code(family: Family) -> u32 {
    match family {
        Family::Ipv4 => FAMILY_V4,
        Family::Ipv6 => FAMILY_V6,
    }
}

fn decode_family(code: u32) -> Option<Family> {
    match code {
        FAMILY_V4 => Some(Family::Ipv4),
        FAMILY_V6 => Some(Family::Ipv6),
        _ => None,
    }
}

/// Serializes one snapshot — the arenas of `store` plus the columnar
/// `tables` and an opaque `meta` blob — into the flat format described in
/// the module docs. The inverse is [`PersistedSnapshot::parse`] followed
/// by [`PersistedSnapshot::rebuild`].
///
/// `tables` must reference ids issued by `store` (the
/// [`SanitizedSnapshot`](crate::SnapshotStore) contract); out-of-range ids
/// would produce a file that fails its own validation on load.
pub fn encode_snapshot(
    store: &SnapshotStore,
    tables: &[Vec<(PrefixId, PathId)>],
    timestamp: SimTime,
    family: Family,
    meta: &[u8],
) -> Vec<u8> {
    // PREFIXES: fixed 24-byte records in id order.
    let prefixes = store.prefixes();
    let mut prefixes_bytes = Vec::with_capacity(prefixes.len() * PREFIX_RECORD_LEN);
    for i in 0..prefixes.len() {
        let prefix = prefixes.get(PrefixId(i as u32));
        let (fam, plen, addr): (u8, u8, u128) = match prefix {
            Prefix::V4(p) => (FAMILY_V4 as u8, p.len(), p.addr() as u128),
            Prefix::V6(p) => (FAMILY_V6 as u8, p.len(), p.addr()),
        };
        prefixes_bytes.push(fam);
        prefixes_bytes.push(plen);
        prefixes_bytes.extend_from_slice(&[0u8; 6]);
        prefixes_bytes.extend_from_slice(&addr.to_le_bytes());
    }
    drop(prefixes);

    // PATH_INDEX + PATH_TOKENS: segment-structured u32 stream in id order.
    let paths = store.paths();
    let mut index_bytes = Vec::with_capacity((paths.len() + 1) * 4);
    let mut tokens = Vec::<u8>::new();
    let mut token_count: u32 = 0;
    index_bytes.extend_from_slice(&0u32.to_le_bytes());
    for i in 0..paths.len() {
        let path = paths.get(PathId(i as u32));
        for segment in path.segments() {
            let (set, members): (bool, &[Asn]) = match segment {
                Segment::Sequence(v) => (false, v),
                Segment::Set(v) => (true, v),
            };
            let header = members.len() as u32 | if set { SEGMENT_SET_BIT } else { 0 };
            tokens.extend_from_slice(&header.to_le_bytes());
            token_count += 1;
            for asn in members {
                tokens.extend_from_slice(&asn.0.to_le_bytes());
                token_count += 1;
            }
        }
        index_bytes.extend_from_slice(&token_count.to_le_bytes());
    }
    drop(paths);

    // SNAP_HEAD + SNAP_TABLES.
    let n_entries: u64 = tables.iter().map(|t| t.len() as u64).sum();
    let mut head = Vec::with_capacity(SNAP_HEAD_LEN);
    head.extend_from_slice(&timestamp.unix().to_le_bytes());
    head.extend_from_slice(&family_code(family).to_le_bytes());
    head.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    head.extend_from_slice(&n_entries.to_le_bytes());
    head.extend_from_slice(&0u64.to_le_bytes());

    let mut tables_bytes = Vec::with_capacity((tables.len() + 1) * 8 + n_entries as usize * 8);
    let mut boundary: u64 = 0;
    tables_bytes.extend_from_slice(&boundary.to_le_bytes());
    for table in tables {
        boundary += table.len() as u64;
        tables_bytes.extend_from_slice(&boundary.to_le_bytes());
    }
    for table in tables {
        for &(prefix, path) in table {
            tables_bytes.extend_from_slice(&prefix.0.to_le_bytes());
            tables_bytes.extend_from_slice(&path.0.to_le_bytes());
        }
    }

    let sections: [(u32, &[u8]); 6] = [
        (KIND_PREFIXES, &prefixes_bytes),
        (KIND_PATH_INDEX, &index_bytes),
        (KIND_PATH_TOKENS, &tokens),
        (KIND_SNAP_HEAD, &head),
        (KIND_SNAP_META, meta),
        (KIND_SNAP_TABLES, &tables_bytes),
    ];

    // Lay out: header, section table, aligned sections.
    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let mut offset = align_up(HEADER_LEN + table_len);
    let mut entries = Vec::with_capacity(sections.len());
    for (kind, payload) in &sections {
        entries.push((
            *kind,
            offset as u64,
            payload.len() as u64,
            checksum64(payload),
        ));
        offset = align_up(offset + payload.len());
    }
    let file_len = offset;

    let mut table = Vec::with_capacity(table_len);
    for &(kind, off, len, sum) in &entries {
        table.extend_from_slice(&kind.to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes());
        table.extend_from_slice(&off.to_le_bytes());
        table.extend_from_slice(&len.to_le_bytes());
        table.extend_from_slice(&sum.to_le_bytes());
    }

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&(file_len as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(&table).to_le_bytes());
    out.extend_from_slice(&table);
    for (_, payload) in &sections {
        while out.len() % ALIGN != 0 {
            out.push(0);
        }
        out.extend_from_slice(payload);
    }
    while out.len() < file_len {
        out.push(0);
    }
    out
}

fn align_up(n: usize) -> usize {
    n.div_ceil(ALIGN) * ALIGN
}

/// A parsed-and-validated view over a persisted snapshot's bytes.
///
/// `parse` checks the envelope — magic, version, file length, section
/// table, per-section checksums, and the cheap structural invariants —
/// without copying any payload, so it is safe to run over a memory map.
/// Accessors read the validated sections in place; [`rebuild`] is the
/// boundary conversion back to the in-memory interned representation.
///
/// [`rebuild`]: PersistedSnapshot::rebuild
pub struct PersistedSnapshot<B> {
    buf: B,
    /// (offset, len) per kind, indexed by `kind - 1`.
    sections: [(usize, usize); 6],
    n_prefixes: usize,
    n_paths: usize,
    n_peers: usize,
    n_entries: usize,
}

impl<B> fmt::Debug for PersistedSnapshot<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistedSnapshot")
            .field("prefixes", &self.n_prefixes)
            .field("paths", &self.n_paths)
            .field("peers", &self.n_peers)
            .field("entries", &self.n_entries)
            .finish()
    }
}

impl<B: AsRef<[u8]>> PersistedSnapshot<B> {
    /// Validates `buf` as a persisted snapshot. Returns a typed
    /// [`PersistError`] on any structural or integrity failure; a
    /// successful parse guarantees every section accessor is in bounds.
    pub fn parse(buf: B) -> Result<Self, PersistError> {
        let bytes = buf.as_ref();
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated {
                what: "header",
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let section_count = read_u32(bytes, 12);
        let file_len = read_u64(bytes, 16);
        if file_len != bytes.len() as u64 {
            return Err(PersistError::LengthMismatch {
                recorded: file_len,
                actual: bytes.len() as u64,
            });
        }
        if section_count == 0 || section_count > MAX_SECTIONS {
            return Err(PersistError::BadSectionTable("implausible section count"));
        }
        let table_end = HEADER_LEN + section_count as usize * SECTION_ENTRY_LEN;
        if bytes.len() < table_end {
            return Err(PersistError::Truncated {
                what: "section table",
                need: table_end,
                have: bytes.len(),
            });
        }
        let table = &bytes[HEADER_LEN..table_end];
        if checksum64(table) != read_u64(bytes, 24) {
            return Err(PersistError::ChecksumMismatch {
                what: "section table",
            });
        }

        let mut sections: [Option<(usize, usize, u64)>; 6] = [None; 6];
        for i in 0..section_count as usize {
            let at = i * SECTION_ENTRY_LEN;
            let kind = read_u32(table, at);
            let offset = read_u64(table, at + 8);
            let len = read_u64(table, at + 16);
            let sum = read_u64(table, at + 24);
            if !(1..=6).contains(&kind) {
                return Err(PersistError::BadSectionTable("unknown section kind"));
            }
            let slot = &mut sections[kind as usize - 1];
            if slot.is_some() {
                return Err(PersistError::BadSectionTable("duplicate section kind"));
            }
            if offset % ALIGN as u64 != 0 {
                return Err(PersistError::BadSectionTable("unaligned section offset"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(PersistError::BadSectionTable("section range overflows"))?;
            if end > bytes.len() as u64 || offset < table_end as u64 {
                return Err(PersistError::BadSectionTable("section out of bounds"));
            }
            *slot = Some((offset as usize, len as usize, sum));
        }
        let mut resolved = [(0usize, 0usize); 6];
        for (i, slot) in sections.iter().enumerate() {
            let (offset, len, sum) =
                slot.ok_or(PersistError::BadSectionTable("missing section kind"))?;
            if checksum64(&bytes[offset..offset + len]) != sum {
                return Err(PersistError::ChecksumMismatch {
                    what: section_name(i as u32 + 1),
                });
            }
            resolved[i] = (offset, len);
        }

        // Every byte outside the header, section table, and section
        // payloads must be zero: padding is part of the format, so damage
        // there is just as tamper-evident as damage to a section, and a
        // snapshot has exactly one valid byte stream.
        let mut ranges: [(usize, usize); 7] = [(0, table_end); 7];
        for (r, &(offset, len)) in ranges[1..].iter_mut().zip(&resolved) {
            *r = (offset, offset + len);
        }
        ranges.sort_unstable();
        let mut covered = 0usize;
        for (start, end) in ranges {
            if start < covered && start != end {
                return Err(PersistError::BadSectionTable("overlapping sections"));
            }
            if bytes[covered..start.max(covered)].iter().any(|&b| b != 0) {
                return Err(PersistError::Malformed {
                    section: "padding",
                    reason: "nonzero byte between sections",
                });
            }
            covered = covered.max(end);
        }
        if bytes[covered..].iter().any(|&b| b != 0) {
            return Err(PersistError::Malformed {
                section: "padding",
                reason: "nonzero byte after the last section",
            });
        }

        // Cheap structural invariants tying the sections together.
        let (_, prefixes_len) = resolved[KIND_PREFIXES as usize - 1];
        if prefixes_len % PREFIX_RECORD_LEN != 0 {
            return Err(PersistError::Malformed {
                section: "PREFIXES",
                reason: "length is not a whole number of records",
            });
        }
        let (_, index_len) = resolved[KIND_PATH_INDEX as usize - 1];
        if index_len % 4 != 0 || index_len < 4 {
            return Err(PersistError::Malformed {
                section: "PATH_INDEX",
                reason: "length is not (n_paths + 1) offsets",
            });
        }
        let (_, tokens_len) = resolved[KIND_PATH_TOKENS as usize - 1];
        if tokens_len % 4 != 0 {
            return Err(PersistError::Malformed {
                section: "PATH_TOKENS",
                reason: "length is not a whole number of words",
            });
        }
        let (head_off, head_len) = resolved[KIND_SNAP_HEAD as usize - 1];
        if head_len != SNAP_HEAD_LEN {
            return Err(PersistError::Malformed {
                section: "SNAP_HEAD",
                reason: "wrong size",
            });
        }
        let n_peers = read_u32(bytes, head_off + 12) as usize;
        let n_entries = read_u64(bytes, head_off + 16) as usize;
        let (_, tables_len) = resolved[KIND_SNAP_TABLES as usize - 1];
        let expect_tables = (n_peers + 1)
            .checked_mul(8)
            .and_then(|b| n_entries.checked_mul(8).and_then(|e| b.checked_add(e)));
        if expect_tables != Some(tables_len) {
            return Err(PersistError::Malformed {
                section: "SNAP_TABLES",
                reason: "length disagrees with SNAP_HEAD peer/entry counts",
            });
        }

        let parsed = PersistedSnapshot {
            buf,
            sections: resolved,
            n_prefixes: prefixes_len / PREFIX_RECORD_LEN,
            n_paths: index_len / 4 - 1,
            n_peers,
            n_entries,
        };
        parsed.validate_monotonic()?;
        Ok(parsed)
    }

    /// Offset monotonicity of the path index and the table boundaries —
    /// everything later accessors index by.
    fn validate_monotonic(&self) -> Result<(), PersistError> {
        let token_words = self.section(KIND_PATH_TOKENS).len() / 4;
        let index = self.section(KIND_PATH_INDEX);
        let mut prev = 0u32;
        for i in 0..=self.n_paths {
            let off = read_u32(index, i * 4);
            if (i == 0 && off != 0) || off < prev || off as usize > token_words {
                return Err(PersistError::Malformed {
                    section: "PATH_INDEX",
                    reason: "offsets not monotonically increasing within PATH_TOKENS",
                });
            }
            prev = off;
        }
        if prev as usize != token_words {
            return Err(PersistError::Malformed {
                section: "PATH_INDEX",
                reason: "final offset does not cover PATH_TOKENS",
            });
        }
        let tables = self.section(KIND_SNAP_TABLES);
        let mut prev = 0u64;
        for i in 0..=self.n_peers {
            let bound = read_u64(tables, i * 8);
            if (i == 0 && bound != 0) || bound < prev || bound > self.n_entries as u64 {
                return Err(PersistError::Malformed {
                    section: "SNAP_TABLES",
                    reason: "entry boundaries not monotonically increasing",
                });
            }
            prev = bound;
        }
        if prev != self.n_entries as u64 {
            return Err(PersistError::Malformed {
                section: "SNAP_TABLES",
                reason: "final boundary does not cover all entries",
            });
        }
        Ok(())
    }

    fn section(&self, kind: u32) -> &[u8] {
        let (offset, len) = self.sections[kind as usize - 1];
        &self.buf.as_ref()[offset..offset + len]
    }

    /// Snapshot timestamp.
    pub fn timestamp(&self) -> SimTime {
        SimTime::from_unix(read_u64(self.section(KIND_SNAP_HEAD), 0))
    }

    /// Snapshot address family.
    pub fn family(&self) -> Result<Family, PersistError> {
        decode_family(read_u32(self.section(KIND_SNAP_HEAD), 8)).ok_or(PersistError::Malformed {
            section: "SNAP_HEAD",
            reason: "unknown address family code",
        })
    }

    /// The opaque metadata blob stored alongside the tables.
    pub fn meta(&self) -> &[u8] {
        self.section(KIND_SNAP_META)
    }

    /// Number of interned prefixes.
    pub fn prefix_count(&self) -> usize {
        self.n_prefixes
    }

    /// Number of interned paths.
    pub fn path_count(&self) -> usize {
        self.n_paths
    }

    /// Number of peer tables.
    pub fn peer_count(&self) -> usize {
        self.n_peers
    }

    /// Total `(prefix, path)` entries across all peer tables.
    pub fn entry_count(&self) -> usize {
        self.n_entries
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.buf.as_ref().len()
    }

    /// Rebuilds the in-memory interned representation: a fresh
    /// [`SnapshotStore`] holding both arenas (ids equal to the file's, by
    /// the first-insertion-order contract) plus the columnar tables.
    ///
    /// Performs the deep validation `parse` deliberately skips: canonical
    /// prefixes, well-formed path segments, arena uniqueness, and id
    /// bounds on every table entry.
    pub fn rebuild(&self) -> Result<RebuiltSnapshot, PersistError> {
        let store = SnapshotStore::new();

        let prefixes = self.section(KIND_PREFIXES);
        for i in 0..self.n_prefixes {
            let at = i * PREFIX_RECORD_LEN;
            let addr = u128::from_le_bytes(
                prefixes[at + 8..at + 24]
                    .try_into()
                    .expect("24-byte record"),
            );
            let prefix = match prefixes[at] as u32 {
                FAMILY_V4 if addr <= u32::MAX as u128 => Prefix::v4(addr as u32, prefixes[at + 1]),
                FAMILY_V6 => Prefix::v6(addr, prefixes[at + 1]),
                _ => {
                    return Err(PersistError::Malformed {
                        section: "PREFIXES",
                        reason: "unknown family code or v4 address overflow",
                    })
                }
            }
            .map_err(|_| PersistError::Malformed {
                section: "PREFIXES",
                reason: "non-canonical prefix (host bits or bad length)",
            })?;
            let (id, hit) = store.intern_prefix(prefix);
            if hit || id.0 as usize != i {
                return Err(PersistError::Malformed {
                    section: "PREFIXES",
                    reason: "duplicate arena entry",
                });
            }
        }

        let index = self.section(KIND_PATH_INDEX);
        let tokens = self.section(KIND_PATH_TOKENS);
        for i in 0..self.n_paths {
            let start = read_u32(index, i * 4) as usize;
            let end = read_u32(index, (i + 1) * 4) as usize;
            let mut segments = Vec::new();
            let mut at = start;
            while at < end {
                let header = read_u32(tokens, at * 4);
                let count = (header & !SEGMENT_SET_BIT) as usize;
                at += 1;
                if count == 0 || at + count > end {
                    return Err(PersistError::Malformed {
                        section: "PATH_TOKENS",
                        reason: "segment overruns its path span",
                    });
                }
                let members: Vec<Asn> = (0..count)
                    .map(|k| Asn(read_u32(tokens, (at + k) * 4)))
                    .collect();
                at += count;
                segments.push(if header & SEGMENT_SET_BIT != 0 {
                    Segment::Set(members)
                } else {
                    Segment::Sequence(members)
                });
            }
            // `from_segments` canonicalizes; a file whose segments are not
            // already canonical (adjacent sequences) collapses into a path
            // that duplicates an earlier id and is refused below.
            let path = AsPath::from_segments(segments);
            let (id, hit) = store.intern_path(&path);
            if hit || id.0 as usize != i {
                return Err(PersistError::Malformed {
                    section: "PATH_TOKENS",
                    reason: "duplicate or non-canonical arena entry",
                });
            }
        }

        let tables_bytes = self.section(KIND_SNAP_TABLES);
        let pairs_base = (self.n_peers + 1) * 8;
        let mut tables = Vec::with_capacity(self.n_peers);
        for peer in 0..self.n_peers {
            let start = read_u64(tables_bytes, peer * 8) as usize;
            let end = read_u64(tables_bytes, (peer + 1) * 8) as usize;
            let mut table = Vec::with_capacity(end - start);
            for entry in start..end {
                let at = pairs_base + entry * 8;
                let prefix = read_u32(tables_bytes, at);
                let path = read_u32(tables_bytes, at + 4);
                if prefix as usize >= self.n_prefixes || path as usize >= self.n_paths {
                    return Err(PersistError::Malformed {
                        section: "SNAP_TABLES",
                        reason: "entry references an id outside the arenas",
                    });
                }
                table.push((PrefixId(prefix), PathId(path)));
            }
            tables.push(table);
        }
        Ok((store, tables))
    }
}

fn section_name(kind: u32) -> &'static str {
    match kind {
        KIND_PREFIXES => "PREFIXES",
        KIND_PATH_INDEX => "PATH_INDEX",
        KIND_PATH_TOKENS => "PATH_TOKENS",
        KIND_SNAP_HEAD => "SNAP_HEAD",
        KIND_SNAP_META => "SNAP_META",
        KIND_SNAP_TABLES => "SNAP_TABLES",
        _ => "unknown",
    }
}

/// Little-endian u32 at `at`; caller guarantees bounds (sections are
/// length-validated at parse time).
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("validated bounds"))
}

/// Little-endian u64 at `at`; caller guarantees bounds.
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("validated bounds"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SnapshotStore, Vec<Vec<(PrefixId, PathId)>>) {
        let store = SnapshotStore::new();
        let tables: Vec<Vec<(PrefixId, PathId)>> = vec![
            vec![
                (
                    store.intern_prefix("10.0.0.0/24".parse().unwrap()).0,
                    store.intern_path(&"1 2 3".parse().unwrap()).0,
                ),
                (
                    store.intern_prefix("10.0.1.0/24".parse().unwrap()).0,
                    store.intern_path(&"1 2 2 3".parse().unwrap()).0,
                ),
            ],
            vec![
                (
                    store.intern_prefix("10.0.0.0/24".parse().unwrap()).0,
                    store.intern_path(&"4 5 [6 7]".parse().unwrap()).0,
                ),
                (
                    store.intern_prefix("2001:db8::/32".parse().unwrap()).0,
                    store.intern_path(&"1 2 3".parse().unwrap()).0,
                ),
            ],
            vec![],
        ];
        (store, tables)
    }

    fn encode_sample(meta: &[u8]) -> Vec<u8> {
        let (store, tables) = sample();
        encode_snapshot(
            &store,
            &tables,
            "2016-01-15 08:00".parse().unwrap(),
            Family::Ipv4,
            meta,
        )
    }

    #[test]
    fn round_trip_rebuilds_identical_arenas_and_tables() {
        let (store, tables) = sample();
        let bytes = encode_sample(b"{\"k\":1}");
        let parsed = PersistedSnapshot::parse(bytes.as_slice()).unwrap();
        assert_eq!(parsed.timestamp(), "2016-01-15 08:00".parse().unwrap());
        assert_eq!(parsed.family().unwrap(), Family::Ipv4);
        assert_eq!(parsed.meta(), b"{\"k\":1}");
        assert_eq!(parsed.prefix_count(), store.prefix_count());
        assert_eq!(parsed.path_count(), store.path_count());
        assert_eq!(parsed.peer_count(), 3);
        assert_eq!(parsed.entry_count(), 4);

        let (rebuilt, rebuilt_tables) = parsed.rebuild().unwrap();
        assert_eq!(rebuilt_tables, tables, "ids survive the round trip");
        for i in 0..store.prefix_count() {
            assert_eq!(
                rebuilt.resolve_prefix(PrefixId(i as u32)),
                store.resolve_prefix(PrefixId(i as u32))
            );
        }
        for i in 0..store.path_count() {
            assert_eq!(
                rebuilt.resolve_path(PathId(i as u32)),
                store.resolve_path(PathId(i as u32))
            );
        }
        assert_eq!(rebuilt.bytes_est(), store.bytes_est());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_sample(b"m"), encode_sample(b"m"));
    }

    #[test]
    fn re_encoding_a_rebuild_is_byte_identical() {
        let bytes = encode_sample(b"meta");
        let parsed = PersistedSnapshot::parse(bytes.as_slice()).unwrap();
        let (store, tables) = parsed.rebuild().unwrap();
        let again = encode_snapshot(
            &store,
            &tables,
            parsed.timestamp(),
            parsed.family().unwrap(),
            parsed.meta(),
        );
        assert_eq!(bytes, again);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let store = SnapshotStore::new();
        let bytes = encode_snapshot(&store, &[], SimTime::from_unix(0), Family::Ipv6, b"");
        let parsed = PersistedSnapshot::parse(bytes.as_slice()).unwrap();
        assert_eq!(parsed.peer_count(), 0);
        assert_eq!(parsed.family().unwrap(), Family::Ipv6);
        let (rebuilt, tables) = parsed.rebuild().unwrap();
        assert_eq!(rebuilt.prefix_count(), 0);
        assert!(tables.is_empty());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        assert_ne!(
            checksum64(&[0u8; 8]),
            checksum64(&[0u8; 9]),
            "length-salted"
        );
        // Every single-bit flip in a 24-byte buffer changes the value.
        let base = [0xA5u8; 24];
        let h = checksum64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base;
                m[byte] ^= 1 << bit;
                assert_ne!(checksum64(&m), h, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let mut bytes = encode_sample(b"");
        bytes[0] ^= 0xFF;
        assert_eq!(
            PersistedSnapshot::parse(bytes.as_slice()).unwrap_err(),
            PersistError::BadMagic
        );
        let mut bytes = encode_sample(b"");
        bytes[8] = 99;
        assert_eq!(
            PersistedSnapshot::parse(bytes.as_slice()).unwrap_err(),
            PersistError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_layer() {
        let bytes = encode_sample(b"some metadata");
        assert!(matches!(
            PersistedSnapshot::parse(&bytes[..10]).unwrap_err(),
            PersistError::Truncated { what: "header", .. }
        ));
        // Anything shorter than the recorded file length is refused before
        // section checksums are even consulted.
        for cut in [HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                PersistedSnapshot::parse(&bytes[..cut]).unwrap_err(),
                PersistError::LengthMismatch { .. }
            ));
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let clean = encode_sample(b"0123456789");
        let parsed = PersistedSnapshot::parse(clean.as_slice()).unwrap();
        let (meta_off, _) = parsed.sections[KIND_SNAP_META as usize - 1];
        let mut bytes = clean.clone();
        bytes[meta_off] ^= 0x01;
        assert_eq!(
            PersistedSnapshot::parse(bytes.as_slice()).unwrap_err(),
            PersistError::ChecksumMismatch { what: "SNAP_META" }
        );
    }
}
