//! AS paths: segment structure, prepend handling, AS-SET rules.
//!
//! An AS path is stored in wire order: the first ASN is the neighbor of the
//! router that exported the route, the last ASN is the origin AS. Policy-atom
//! analysis frequently walks paths **from the origin**, so the type provides
//! origin-first iterators with and without consecutive-duplicate
//! (prepend) collapsing — the distinction at the heart of the paper's
//! formation-distance methods (§3.4.2).

use crate::asn::Asn;
use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One AS_PATH segment (RFC 4271 §4.3).
///
/// Only `AS_SEQUENCE` and `AS_SET` occur in collector data relevant to the
/// paper; confederation segments are stripped by collectors.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// An ordered sequence of ASNs.
    Sequence(Vec<Asn>),
    /// An unordered set of ASNs produced by route aggregation.
    ///
    /// Canonical form keeps members sorted and deduplicated, which
    /// [`AsPath::canonicalize_sets`] enforces.
    Set(Vec<Asn>),
}

impl Segment {
    /// Number of ASNs stored in the segment.
    pub fn len(&self) -> usize {
        match self {
            Segment::Sequence(v) | Segment::Set(v) => v.len(),
        }
    }

    /// Returns `true` if the segment holds no ASNs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A full AS path: a list of segments in wire order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<Segment>,
}

impl AsPath {
    /// An empty path (used for routes originated by the peer itself, and as
    /// the paper's "empty path" marker for prefixes a vantage point does not
    /// carry).
    pub fn empty() -> Self {
        AsPath { segments: vec![] }
    }

    /// Builds a path with a single `AS_SEQUENCE` segment.
    pub fn from_asns<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let seq: Vec<Asn> = asns.into_iter().collect();
        if seq.is_empty() {
            AsPath::empty()
        } else {
            AsPath {
                segments: vec![Segment::Sequence(seq)],
            }
        }
    }

    /// Builds a path from explicit segments, dropping empty ones and merging
    /// adjacent sequences into the canonical representation (two adjacent
    /// `AS_SEQUENCE`s are semantically one; normalizing here makes structural
    /// equality match semantic equality).
    pub fn from_segments<I: IntoIterator<Item = Segment>>(segments: I) -> Self {
        let mut out: Vec<Segment> = Vec::new();
        for seg in segments {
            if seg.is_empty() {
                continue;
            }
            match (out.last_mut(), seg) {
                (Some(Segment::Sequence(tail)), Segment::Sequence(v)) => tail.extend(v),
                (_, seg) => out.push(seg),
            }
        }
        AsPath { segments: out }
    }

    /// The segments in wire order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Returns `true` for the empty path.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total number of ASN slots in the path, counting every prepend copy
    /// and every set member.
    pub fn raw_len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// All ASNs in wire order (peer side first, origin last), including
    /// prepend copies and set members.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| match s {
            Segment::Sequence(v) | Segment::Set(v) => v.iter().copied(),
        })
    }

    /// The origin AS: the last ASN of the final segment if that segment is a
    /// sequence or a singleton set. Multi-member trailing sets have no
    /// unambiguous origin and yield `None`.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            Segment::Sequence(v) => v.last().copied(),
            Segment::Set(v) if v.len() == 1 => Some(v[0]),
            Segment::Set(_) => None,
        }
    }

    /// The ASN adjacent to the exporting router (the first ASN on the wire),
    /// normally the peer's own AS.
    pub fn first(&self) -> Option<Asn> {
        match self.segments.first()? {
            Segment::Sequence(v) => v.first().copied(),
            Segment::Set(v) if v.len() == 1 => Some(v[0]),
            Segment::Set(_) => None,
        }
    }

    /// Returns `true` if any segment is an `AS_SET`.
    pub fn has_as_set(&self) -> bool {
        self.segments.iter().any(|s| matches!(s, Segment::Set(_)))
    }

    /// Expands singleton `AS_SET`s into sequence hops (the paper's §2.4.4
    /// rule). Fails with [`TypeError::AmbiguousSet`] if any set has more than
    /// one member — such paths are removed from the study.
    pub fn expand_singleton_sets(&self) -> Result<AsPath, TypeError> {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            match seg {
                Segment::Sequence(v) => match out.last_mut() {
                    Some(Segment::Sequence(tail)) => tail.extend_from_slice(v),
                    _ => out.push(Segment::Sequence(v.clone())),
                },
                Segment::Set(v) if v.len() == 1 => match out.last_mut() {
                    Some(Segment::Sequence(tail)) => tail.push(v[0]),
                    _ => out.push(Segment::Sequence(vec![v[0]])),
                },
                Segment::Set(_) => return Err(TypeError::AmbiguousSet),
            }
        }
        Ok(AsPath { segments: out })
    }

    /// Sorts and deduplicates every `AS_SET`'s members, producing the
    /// canonical representation used for path equality.
    pub fn canonicalize_sets(&mut self) {
        for seg in &mut self.segments {
            if let Segment::Set(v) = seg {
                v.sort_unstable();
                v.dedup();
            }
        }
    }

    /// Returns `true` if any ASN in the path is in a private-use range.
    ///
    /// Used to detect the paper's misconfigured peer (Appendix A8.3.2),
    /// which leaked AS65000 into the paths of >150 k atoms.
    pub fn contains_private_asn(&self) -> bool {
        self.asns().any(Asn::is_private)
    }

    /// Returns `true` if the path contains `asn` anywhere.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Prepends `count` extra copies of `asn` at the wire-order front.
    ///
    /// This models export-time `AS_PATH` prepending: the router's own ASN is
    /// repeated to make the path less preferred.
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(Segment::Sequence(v)) => {
                v.splice(0..0, std::iter::repeat(asn).take(count));
            }
            _ => {
                self.segments.insert(0, Segment::Sequence(vec![asn; count]));
            }
        }
    }

    /// A copy of the path with consecutive duplicate ASNs inside sequences
    /// collapsed to one (prepend stripping — the paper's method (i)/(ii)
    /// preprocessing). Sets are left untouched.
    pub fn strip_prepends(&self) -> AsPath {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        let mut last_seq_asn: Option<Asn> = None;
        for seg in &self.segments {
            match seg {
                Segment::Sequence(v) => {
                    let mut stripped = Vec::with_capacity(v.len());
                    for &a in v {
                        if last_seq_asn != Some(a) {
                            stripped.push(a);
                        }
                        last_seq_asn = Some(a);
                    }
                    if !stripped.is_empty() {
                        // Merge with a preceding sequence so that the result
                        // compares equal regardless of how the input was
                        // segmented.
                        match out.last_mut() {
                            Some(Segment::Sequence(tail)) => tail.extend(stripped),
                            _ => out.push(Segment::Sequence(stripped)),
                        }
                    }
                }
                Segment::Set(v) => {
                    out.push(Segment::Set(v.clone()));
                    last_seq_asn = None;
                }
            }
        }
        AsPath { segments: out }
    }

    /// Returns `true` if the path contains at least one prepend (a
    /// consecutive duplicate ASN inside a sequence).
    pub fn has_prepend(&self) -> bool {
        let mut prev: Option<Asn> = None;
        for seg in &self.segments {
            match seg {
                Segment::Sequence(v) => {
                    for &a in v {
                        if prev == Some(a) {
                            return true;
                        }
                        prev = Some(a);
                    }
                }
                Segment::Set(_) => prev = None,
            }
        }
        false
    }

    /// ASNs in wire order with consecutive duplicates collapsed
    /// (set members are yielded as-is).
    pub fn unique_hops(&self) -> Vec<Asn> {
        let mut out = Vec::with_capacity(self.raw_len());
        for a in self.asns() {
            if out.last() != Some(&a) {
                out.push(a);
            }
        }
        out
    }

    /// ASNs from the **origin** towards the peer, including prepend copies.
    ///
    /// This is the raw walk used when atoms are grouped (method (iii) groups
    /// on the raw path).
    pub fn from_origin_raw(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.asns().collect();
        v.reverse();
        v
    }

    /// ASNs from the **origin** towards the peer with consecutive duplicates
    /// collapsed — the hop counting used by the paper's adopted formation
    /// distance method (iii): "count in terms of unique ASes in the stripped
    /// AS path to determine the split point" (§3.4.2).
    pub fn from_origin_unique(&self) -> Vec<Asn> {
        let mut v = self.unique_hops();
        v.reverse();
        v
    }
}

impl fmt::Display for AsPath {
    /// Formats as space-separated ASNs with sets in brackets, matching the
    /// paper's notation: `1 2 [3 4 5]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                Segment::Sequence(v) => {
                    let mut inner_first = true;
                    for a in v {
                        if !inner_first {
                            write!(f, " ")?;
                        }
                        inner_first = false;
                        write!(f, "{}", a.0)?;
                    }
                }
                Segment::Set(v) => {
                    write!(f, "[")?;
                    let mut inner_first = true;
                    for a in v {
                        if !inner_first {
                            write!(f, " ")?;
                        }
                        inner_first = false;
                        write!(f, "{}", a.0)?;
                    }
                    write!(f, "]")?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = TypeError;

    /// Parses the display form: space-separated ASNs, `[..]` for AS-SETs.
    /// `""` parses to the empty path.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TypeError::Parse {
            what: "AsPath",
            input: s.to_string(),
        };
        let mut segments: Vec<Segment> = Vec::new();
        let mut current_seq: Vec<Asn> = Vec::new();
        let mut rest = s.trim();
        while !rest.is_empty() {
            if let Some(after) = rest.strip_prefix('[') {
                if !current_seq.is_empty() {
                    segments.push(Segment::Sequence(std::mem::take(&mut current_seq)));
                }
                let (inside, tail) = after.split_once(']').ok_or_else(err)?;
                let members: Result<Vec<Asn>, _> = inside
                    .split_whitespace()
                    .map(|t| t.parse::<Asn>())
                    .collect();
                let members = members.map_err(|_| err())?;
                if members.is_empty() {
                    return Err(err());
                }
                segments.push(Segment::Set(members));
                rest = tail.trim_start();
            } else {
                let end = rest.find([' ', '[']).unwrap_or(rest.len());
                let (tok, tail) = rest.split_at(end);
                current_seq.push(tok.parse::<Asn>().map_err(|_| err())?);
                rest = tail.trim_start();
            }
        }
        if !current_seq.is_empty() {
            segments.push(Segment::Sequence(current_seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn empty_path_properties() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.raw_len(), 0);
        assert_eq!(p.origin(), None);
        assert_eq!(p.first(), None);
        assert_eq!(p.to_string(), "");
        assert_eq!(path(""), p);
    }

    #[test]
    fn origin_and_first() {
        let p = path("3356 1299 64500");
        assert_eq!(p.origin(), Some(Asn(64500)));
        assert_eq!(p.first(), Some(Asn(3356)));
    }

    #[test]
    fn origin_of_trailing_set() {
        let p = path("1 2 [3 4 5]");
        assert_eq!(p.origin(), None);
        let p = path("1 2 [3]");
        assert_eq!(p.origin(), Some(Asn(3)));
    }

    #[test]
    fn display_round_trip() {
        for s in ["3356 1299 64500", "1 2 [3 4 5]", "1 1 1 2", "[7]"] {
            assert_eq!(path(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("1 2 [3".parse::<AsPath>().is_err());
        assert!("1 x 3".parse::<AsPath>().is_err());
        assert!("[]".parse::<AsPath>().is_err());
        assert!("1 [a]".parse::<AsPath>().is_err());
    }

    #[test]
    fn prepend_extends_front() {
        let mut p = path("2 3");
        p.prepend(Asn(2), 2);
        assert_eq!(p, path("2 2 2 3"));
        let mut q = AsPath::empty();
        q.prepend(Asn(9), 1);
        assert_eq!(q, path("9"));
        let mut r = path("1 2");
        r.prepend(Asn(1), 0);
        assert_eq!(r, path("1 2"));
    }

    #[test]
    fn strip_prepends_collapses_duplicates() {
        assert_eq!(path("1 1 1 2 3 3").strip_prepends(), path("1 2 3"));
        assert_eq!(path("1 2 3").strip_prepends(), path("1 2 3"));
        // The paper's worked example (§3.4.2): (AS1, AS2, AS3) and
        // (AS1, AS2, AS2, AS3) become indistinguishable after stripping.
        assert_eq!(
            path("1 2 2 3").strip_prepends(),
            path("1 2 3").strip_prepends()
        );
    }

    #[test]
    fn strip_prepends_collapses_across_segment_boundary() {
        let p = AsPath::from_segments([
            Segment::Sequence(vec![Asn(1), Asn(2)]),
            Segment::Sequence(vec![Asn(2), Asn(3)]),
        ]);
        assert_eq!(p.strip_prepends(), path("1 2 3"));
    }

    #[test]
    fn strip_prepends_does_not_collapse_through_sets() {
        let p = path("1 2 [9] 2 3");
        // The set breaks the consecutive-duplicate run: both 2s remain.
        assert_eq!(p.strip_prepends(), path("1 2 [9] 2 3"));
    }

    #[test]
    fn strip_prepends_is_idempotent() {
        let p = path("5 5 4 4 4 3 [1 2] 3 3");
        assert_eq!(p.strip_prepends().strip_prepends(), p.strip_prepends());
    }

    #[test]
    fn has_prepend_detection() {
        assert!(path("1 1 2").has_prepend());
        assert!(!path("1 2 1").has_prepend());
        assert!(!path("1 2 3").has_prepend());
        assert!(!AsPath::empty().has_prepend());
    }

    #[test]
    fn expand_singleton_sets_merges_into_sequences() {
        let p = path("1 2 [3] 4");
        assert_eq!(p.expand_singleton_sets().unwrap(), path("1 2 3 4"));
        let p = path("[3]");
        assert_eq!(p.expand_singleton_sets().unwrap(), path("3"));
    }

    #[test]
    fn expand_rejects_multi_member_sets() {
        let p = path("1 2 [3 4]");
        assert_eq!(p.expand_singleton_sets(), Err(TypeError::AmbiguousSet));
    }

    #[test]
    fn canonicalize_sets_sorts_and_dedups() {
        let mut p = path("1 [5 3 5 4]");
        p.canonicalize_sets();
        assert_eq!(p, path("1 [3 4 5]"));
    }

    #[test]
    fn private_asn_detection() {
        assert!(path("25885 65000 3356 64500").contains_private_asn());
        assert!(!path("25885 3356 9000").contains_private_asn());
    }

    #[test]
    fn origin_first_walks() {
        let p = path("10 20 20 30");
        assert_eq!(
            p.from_origin_raw(),
            vec![Asn(30), Asn(20), Asn(20), Asn(10)]
        );
        assert_eq!(p.from_origin_unique(), vec![Asn(30), Asn(20), Asn(10)]);
    }

    #[test]
    fn unique_hops_preserves_non_consecutive_repeats() {
        // 1 2 1 is a legal (if odd) path; only *consecutive* copies collapse.
        assert_eq!(path("1 2 1").unique_hops(), vec![Asn(1), Asn(2), Asn(1)]);
    }

    #[test]
    fn contains_and_raw_len() {
        let p = path("1 2 [3 4]");
        assert!(p.contains(Asn(4)));
        assert!(!p.contains(Asn(9)));
        assert_eq!(p.raw_len(), 4);
        assert!(p.has_as_set());
        assert!(!path("1 2").has_as_set());
    }

    #[test]
    fn from_asns_builder() {
        let p = AsPath::from_asns([Asn(1), Asn(2)]);
        assert_eq!(p, path("1 2"));
        assert_eq!(AsPath::from_asns([]), AsPath::empty());
    }

    #[test]
    fn from_segments_drops_empty() {
        let p = AsPath::from_segments([
            Segment::Sequence(vec![]),
            Segment::Sequence(vec![Asn(1)]),
            Segment::Set(vec![]),
        ]);
        assert_eq!(p, path("1"));
    }
}
