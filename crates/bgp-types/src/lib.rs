//! Core BGP domain types shared by every crate in the `policy-atoms`
//! workspace.
//!
//! This crate is deliberately small and dependency-light: it defines the
//! vocabulary of the system — [`Asn`], [`Prefix`], [`AsPath`],
//! [`Community`], [`UpdateRecord`], [`RibEntry`] — together with the parsing,
//! formatting, and structural operations the rest of the workspace needs
//! (prepend stripping, AS-SET expansion, origin extraction, containment
//! checks, …).
//!
//! Design follows the conventions of mature Rust networking libraries:
//! no panics on untrusted input (fallible constructors return
//! [`TypeError`]), canonical forms are enforced at construction time, and
//! every public item is documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as_path;
pub mod asn;
pub mod community;
pub mod error;
pub mod prefix;
pub mod prefix_trie;
pub mod rib;
pub mod store;
pub mod timestamp;
pub mod update;

pub use as_path::{AsPath, Segment};
pub use asn::Asn;
pub use community::Community;
pub use error::TypeError;
pub use prefix::{Family, Ipv4Prefix, Ipv6Prefix, Prefix};
pub use prefix_trie::PrefixTrie;
pub use rib::{PeerKey, RibEntry, RouteAttrs, RouteOrigin};
pub use store::{PathId, PathTable, PrefixId, PrefixTable, SnapshotStore};
pub use timestamp::SimTime;
pub use update::UpdateRecord;
