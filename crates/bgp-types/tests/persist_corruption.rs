//! Corruption suite for the persisted snapshot format: every kind of
//! damage — truncation at any boundary, flipped checksums, wrong magic or
//! version, and a systematic single-byte-flip sweep over the whole file —
//! must surface as a typed [`PersistError`] or a divergent rebuild, and
//! must never panic. The parse + rebuild pair is the exact code path
//! `StoreDir::load` runs on untrusted bytes.

use bgp_types::store::persist::{
    encode_snapshot, PersistError, PersistedSnapshot, RebuiltSnapshot, MAGIC, VERSION,
};
use bgp_types::{Family, SimTime, SnapshotStore};

/// A small but fully featured snapshot: both families of path segments,
/// shared paths across peers, v4 prefixes of several lengths.
fn sample() -> Vec<u8> {
    let store = SnapshotStore::new();
    let mut tables = Vec::new();
    for peer in 0..3u32 {
        let mut table = Vec::new();
        for i in 0..8u32 {
            let prefix = bgp_types::Prefix::v4((10 << 24) | (i << 8), 24).unwrap();
            let (pid, _) = store.intern_prefix(prefix);
            let path = format!("{} {} [55 66] {}", 100 + peer, 200 + i % 3, 9000 + i % 2)
                .parse()
                .unwrap();
            let (aid, _) = store.intern_path(&path);
            table.push((pid, aid));
        }
        tables.push(table);
    }
    encode_snapshot(
        &store,
        &tables,
        "2016-01-15 08:00".parse::<SimTime>().unwrap(),
        Family::Ipv4,
        br#"{"k":"v"}"#,
    )
}

/// Parse + deep rebuild, the full untrusted-input path.
fn open(bytes: &[u8]) -> Result<RebuiltSnapshot, PersistError> {
    PersistedSnapshot::parse(bytes)?.rebuild()
}

#[test]
fn pristine_sample_opens() {
    let bytes = sample();
    let (store, tables) = open(&bytes).expect("pristine file must open");
    assert_eq!(store.prefix_count(), 8);
    assert_eq!(tables.len(), 3);
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = sample();
    for len in 0..bytes.len() {
        match open(&bytes[..len]) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} of {} bytes was accepted", bytes.len()),
        }
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = sample();
    bytes[..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(open(&bytes), Err(PersistError::BadMagic)));
}

#[test]
fn future_version_is_refused() {
    let mut bytes = sample();
    let next = VERSION + 1;
    bytes[8..12].copy_from_slice(&next.to_le_bytes());
    assert!(matches!(
        open(&bytes),
        Err(PersistError::UnsupportedVersion(v)) if v == next
    ));
}

#[test]
fn flipped_section_checksum_is_a_checksum_mismatch() {
    let bytes = sample();
    // The first section-table entry's checksum field sits at header (32)
    // + kind/pad/offset/len (24).
    let mut damaged = bytes.clone();
    damaged[32 + 24] ^= 0x01;
    match open(&damaged) {
        Err(PersistError::ChecksumMismatch { .. }) => {}
        other => panic!("expected a checksum mismatch, got {other:?}"),
    }
}

#[test]
fn recorded_length_must_match() {
    let mut bytes = sample();
    let wrong = (bytes.len() as u64 + 8).to_le_bytes();
    bytes[16..24].copy_from_slice(&wrong);
    assert!(matches!(
        open(&bytes),
        Err(PersistError::LengthMismatch { .. } | PersistError::ChecksumMismatch { .. })
    ));
}

/// The exhaustive sweep: flip every single byte of the file (all eight
/// bit positions would multiply runtime for no extra structural coverage;
/// one flip per byte already visits every field). Damage anywhere must
/// either be caught as a typed error or — if it lands in a spot the
/// format legitimately cannot distinguish (it never does today, but the
/// assertion is about safety, not detection) — still never panic.
#[test]
fn every_single_byte_flip_is_caught_and_never_panics() {
    let bytes = sample();
    let mut undetected = Vec::new();
    for i in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 0xA5;
        if open(&damaged).is_ok() {
            undetected.push(i);
        }
    }
    assert!(
        undetected.is_empty(),
        "byte flips at {undetected:?} went undetected ({} bytes total; \
         MAGIC is {MAGIC:?})",
        bytes.len()
    );
}
