//! Property tests: the prefix trie agrees with a brute-force scan.

use bgp_types::{Ipv4Prefix, Prefix, PrefixTrie};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    // A small universe so collisions and containment happen often.
    (0u32..64, 8u8..=24).prop_map(|(block, len)| {
        Prefix::V4(Ipv4Prefix::new_masked(block << 24 | (block << 8), len).unwrap())
    })
}

fn brute_longest(set: &[Prefix], q: Prefix) -> Option<u8> {
    set.iter().filter(|p| p.contains(q)).map(|p| p.len()).max()
}

fn brute_covering(set: &[Prefix], q: Prefix) -> Option<u8> {
    set.iter()
        .filter(|p| p.contains(q) && p.len() < q.len())
        .map(|p| p.len())
        .max()
}

fn brute_more_specific(set: &[Prefix], q: Prefix) -> bool {
    set.iter().any(|p| q.contains(*p) && p.len() > q.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trie_agrees_with_brute_force(
        inserts in prop::collection::vec(arb_prefix(), 1..40),
        queries in prop::collection::vec(arb_prefix(), 1..20),
    ) {
        let mut set: Vec<Prefix> = inserts.clone();
        set.sort();
        set.dedup();
        let mut trie = PrefixTrie::new();
        for &p in &set {
            trie.insert(p, p).unwrap();
        }
        prop_assert_eq!(trie.len(), set.len());
        for &q in &queries {
            prop_assert_eq!(
                trie.longest_match(q).map(|(l, _)| l),
                brute_longest(&set, q),
                "longest_match({})", q
            );
            prop_assert_eq!(
                trie.covering(q).map(|(l, _)| l),
                brute_covering(&set, q),
                "covering({})", q
            );
            prop_assert_eq!(
                trie.has_more_specific(q),
                brute_more_specific(&set, q),
                "has_more_specific({})", q
            );
            prop_assert_eq!(trie.get(q).is_some(), set.contains(&q));
        }
    }

    #[test]
    fn reinsertion_returns_old_value(p in arb_prefix(), a in any::<u32>(), b in any::<u32>()) {
        let mut trie = PrefixTrie::new();
        prop_assert_eq!(trie.insert(p, a).unwrap(), None);
        prop_assert_eq!(trie.insert(p, b).unwrap(), Some(a));
        prop_assert_eq!(trie.get(p), Some(&b));
        prop_assert_eq!(trie.len(), 1);
    }
}
