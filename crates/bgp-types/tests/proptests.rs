//! Property-based tests for the core BGP domain types.

use bgp_types::{AsPath, Asn, Ipv4Prefix, Ipv6Prefix, Prefix, Segment, SimTime};
use proptest::prelude::*;

fn arb_asn() -> impl Strategy<Value = Asn> {
    prop_oneof![
        1u32..100_000u32,
        Just(65000u32),
        4_200_000_000u32..4_210_000_000u32,
    ]
    .prop_map(Asn)
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        prop::collection::vec(arb_asn(), 1..8).prop_map(Segment::Sequence),
        prop::collection::vec(arb_asn(), 1..4).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            Segment::Set(v)
        }),
    ]
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(arb_segment(), 0..4).prop_map(AsPath::from_segments)
}

proptest! {
    #[test]
    fn prefix_v4_display_parse_round_trip(addr in any::<u32>(), len in 0u8..=32) {
        let p = Ipv4Prefix::new_masked(addr, len).unwrap();
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, Prefix::V4(p));
    }

    #[test]
    fn prefix_v6_display_parse_round_trip(addr in any::<u128>(), len in 0u8..=128) {
        let p = Ipv6Prefix::new_masked(addr, len).unwrap();
        let parsed: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, Prefix::V6(p));
    }

    #[test]
    fn prefix_contains_is_reflexive_and_antisymmetric(
        addr in any::<u32>(), len_a in 0u8..=32, len_b in 0u8..=32,
    ) {
        let a = Ipv4Prefix::new_masked(addr, len_a).unwrap();
        let b = Ipv4Prefix::new_masked(addr, len_b).unwrap();
        prop_assert!(a.contains(a));
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
        // The shorter prefix on the same bits always contains the longer.
        if len_a <= len_b {
            prop_assert!(a.contains(b));
        }
    }

    #[test]
    fn as_path_display_parse_round_trip(p in arb_path()) {
        let parsed: AsPath = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn strip_prepends_idempotent(p in arb_path()) {
        let once = p.strip_prepends();
        prop_assert_eq!(once.strip_prepends(), once);
    }

    #[test]
    fn strip_prepends_removes_all_prepends(p in arb_path()) {
        prop_assert!(!p.strip_prepends().has_prepend());
    }

    #[test]
    fn strip_prepends_preserves_origin(p in arb_path()) {
        // Origin is the last hop; collapsing consecutive duplicates never
        // changes which AS is last.
        prop_assert_eq!(p.strip_prepends().origin(), p.origin());
    }

    #[test]
    fn prepend_then_strip_is_noop_on_stripped(p in arb_path(), n in 1usize..4) {
        let stripped = p.strip_prepends();
        // Prepends only collapse into a leading sequence; a leading AS-SET
        // deliberately breaks the duplicate run (see strip_prepends docs).
        if let Some(Segment::Sequence(v)) = stripped.segments().first() {
            let first = v[0];
            let mut prepended = stripped.clone();
            prepended.prepend(first, n);
            prop_assert_eq!(prepended.strip_prepends(), stripped);
        }
    }

    #[test]
    fn from_origin_walks_agree_on_endpoints(p in arb_path()) {
        let raw = p.from_origin_raw();
        let uniq = p.from_origin_unique();
        prop_assert_eq!(raw.first(), uniq.first());
        prop_assert_eq!(raw.last(), uniq.last());
        prop_assert!(uniq.len() <= raw.len());
    }

    #[test]
    fn simtime_civil_round_trip(secs in 0u64..4_102_444_800u64) {
        // Up to year 2100.
        let t = SimTime::from_unix(secs);
        let c = t.civil();
        let rebuilt = SimTime::from_ymd_hms(c.year, c.month, c.day, c.hour, c.minute, c.second);
        prop_assert_eq!(rebuilt, t);
    }

    #[test]
    fn simtime_display_parse_round_trip(secs in 0u64..4_102_444_800u64) {
        let t = SimTime::from_unix(secs);
        let parsed: SimTime = t.to_string().parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn asn_display_parse_round_trip(n in any::<u32>()) {
        let a = Asn(n);
        prop_assert_eq!(a.to_string().parse::<Asn>().unwrap(), a);
    }
}
